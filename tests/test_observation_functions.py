"""Tests for the observation functions, subset selections, and study measures."""

import pytest

from repro.analysis.intervals import IntervalSet
from repro.errors import MeasureError, ObservationFunctionError
from repro.measures.observation import (
    Count,
    Duration,
    Instant,
    Outcome,
    TotalDuration,
    UserObservation,
)
from repro.measures.predicate import StateTuple
from repro.measures.pvt import PredicateTimeline
from repro.measures.study import MeasureStep, StudyMeasure
from repro.measures.subset import select_all, value_between, value_positive, where
from repro.measures.timeline_view import TimelineView


def pvt(steps=(), impulses=(), start=0.0, end=50.0):
    return PredicateTimeline(IntervalSet.from_pairs(steps), impulses, start, end)


SAMPLE = pvt(steps=[(10, 20), (30, 35)], impulses=[5, 40])


class TestCount:
    def test_counts_both_kinds_and_edges(self):
        assert Count("B", "B")(SAMPLE) == 8.0
        assert Count("U", "B")(SAMPLE) == 4.0
        assert Count("U", "S")(SAMPLE) == 2.0
        assert Count("U", "I")(SAMPLE) == 2.0
        assert Count("D", "S")(SAMPLE) == 2.0

    def test_window_restricts_counting(self):
        assert Count("U", "B", start=8, end=32)(SAMPLE) == 2.0

    def test_macros_resolve_to_experiment_bounds(self):
        assert Count("U", "B", start="START_EXP", end="END_EXP")(SAMPLE) == 4.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ObservationFunctionError):
            Count("X", "B")
        with pytest.raises(ObservationFunctionError):
            Count("U", "Q")


class TestOutcome:
    def test_outcome_inside_step(self):
        assert Outcome(15.0)(SAMPLE) == 1.0

    def test_outcome_at_impulse(self):
        assert Outcome(5.0)(SAMPLE) == 1.0

    def test_outcome_outside(self):
        assert Outcome(25.0)(SAMPLE) == 0.0


class TestDuration:
    def test_duration_after_nth_up(self):
        assert Duration("T", 1)(SAMPLE) == pytest.approx(0.0)  # first up is the impulse at 5
        assert Duration("T", 2)(SAMPLE) == pytest.approx(10.0)
        assert Duration("T", 3)(SAMPLE) == pytest.approx(5.0)

    def test_duration_false_after_nth_down(self):
        # After the first down (impulse at 5) the predicate is false until 10.
        assert Duration("F", 1)(SAMPLE) == pytest.approx(5.0)
        assert Duration("F", 2)(SAMPLE) == pytest.approx(10.0)

    def test_missing_occurrence_returns_zero(self):
        assert Duration("T", 9)(SAMPLE) == 0.0

    def test_occurrence_must_be_positive(self):
        with pytest.raises(ObservationFunctionError):
            Duration("T", 0)

    def test_duration_clipped_to_end(self):
        open_ended = pvt(steps=[(40, 50)])
        assert Duration("T", 1, end=45)(open_ended) == pytest.approx(5.0)


class TestInstant:
    def test_nth_transition_instant(self):
        assert Instant("U", "B", 1)(SAMPLE) == pytest.approx(5.0)
        assert Instant("U", "S", 1)(SAMPLE) == pytest.approx(10.0)
        assert Instant("D", "S", 2)(SAMPLE) == pytest.approx(35.0)
        assert Instant("U", "I", 2)(SAMPLE) == pytest.approx(40.0)

    def test_missing_occurrence_returns_zero(self):
        assert Instant("U", "I", 5)(SAMPLE) == 0.0

    def test_window(self):
        assert Instant("U", "B", 1, start=20, end=50)(SAMPLE) == pytest.approx(30.0)


class TestTotalDuration:
    def test_true_total(self):
        assert TotalDuration("T")(SAMPLE) == pytest.approx(15.0)

    def test_false_total(self):
        assert TotalDuration("F")(SAMPLE) == pytest.approx(35.0)

    def test_window(self):
        assert TotalDuration("T", start=15, end=32)(SAMPLE) == pytest.approx(7.0)

    def test_empty_window(self):
        assert TotalDuration("T", start=30, end=20)(SAMPLE) == 0.0


class TestUserObservation:
    def test_wraps_callable(self):
        indicator = UserObservation(lambda timeline: 1.0 if timeline.true_duration() > 0 else 0.0)
        assert indicator(SAMPLE) == 1.0
        assert indicator(pvt()) == 0.0


class TestSubsetSelections:
    def test_select_all(self):
        assert select_all()(None)
        assert select_all()(3.0)

    def test_value_positive(self):
        assert value_positive()(1.0)
        assert not value_positive()(0.0)
        assert value_positive()(None)  # first triple passes everything

    def test_value_between(self):
        subset = value_between(2, 10)
        assert subset(2.0) and subset(10.0)
        assert not subset(11.0)

    def test_where_custom(self):
        subset = where(lambda value: value != 0)
        assert subset(5.0)
        assert not subset(0.0)


class TestStudyMeasure:
    def view(self, active_until):
        rows = [("m", "ACTIVE", "stop", active_until)]
        return TimelineView.from_rows(rows, start=0.0, end=10.0)

    def test_single_step_measure(self):
        measure = StudyMeasure(
            "time-active", (MeasureStep(StateTuple("m", "ACTIVE"), TotalDuration("T")),)
        )
        assert measure.apply_to_view(self.view(4.0)) == pytest.approx(4.0)

    def test_second_step_subset_filters_experiments(self):
        measure = StudyMeasure.from_triples(
            "conditional",
            [
                (select_all(), StateTuple("m", "ACTIVE"), TotalDuration("T")),
                (value_between(3, 100), StateTuple("m", "ACTIVE"), Count("U", "S")),
            ],
        )
        assert measure.apply_to_view(self.view(5.0)) == 1.0
        assert measure.apply_to_view(self.view(1.0)) is None

    def test_apply_and_final_values(self):
        measure = StudyMeasure.from_triples(
            "conditional",
            [
                (select_all(), StateTuple("m", "ACTIVE"), TotalDuration("T")),
                (value_between(3, 100), StateTuple("m", "ACTIVE"), Count("U", "S")),
            ],
        )
        views = [self.view(5.0), self.view(1.0), self.view(8.0)]
        assert measure.apply(views) == [1.0, None, 1.0]
        assert measure.final_values(views) == [1.0, 1.0]

    def test_empty_measure_rejected(self):
        with pytest.raises(MeasureError):
            StudyMeasure("empty", ())
