"""The new partition scenarios: behaviour, determinism, and store resume.

Each scenario of the partition/degradation suite must (a) show the
distributed-systems failure mode it was designed around, (b) produce
bit-identical results on the serial and process-pool backends (the generic
registry smoke test also covers this), and (c) resume from a campaign
store whose fingerprint covers the network model — interrupting a run and
resuming must be bit-identical to running uninterrupted, and mutating the
network model must invalidate the archive.
"""

import pytest

from repro.core.campaign import CampaignConfig, CampaignRunner, run_single_study
from repro.errors import StoreIntegrityError
from repro.measures.campaign_measures import (
    SimpleSamplingMeasure,
    estimate_campaign_measure,
)
from repro.pipeline import analyze_study, run_and_analyze
from repro.scenarios import DEFAULT_REGISTRY
from repro.store import CampaignStore

NEW_SCENARIOS = (
    "two-phase-commit-partition",
    "token-ring-partition-heal",
    "leader-election-asym-link",
)


def test_new_scenarios_are_registered_with_network_tags():
    for name in NEW_SCENARIOS:
        scenario = DEFAULT_REGISTRY.get(name)
        assert "network" in scenario.tags
        assert scenario.measure_factory is not None


def test_scenario_table_shows_network_fault_lines():
    lines = DEFAULT_REGISTRY.get("two-phase-commit-partition").fault_lines()
    assert any("network:partition[" in line for line in lines)
    # Scheduled faults appear too, with their offsets.
    scheduled = DEFAULT_REGISTRY.get("token-ring-partition-heal").fault_lines()
    assert any("@0.08s network:partition[" in line for line in scheduled)
    assert any("network:heal" in line for line in scheduled)


# ---------------------------------------------------------------------------
# Failure-mode behaviour
# ---------------------------------------------------------------------------


class TestFailureModes:
    def analyzed(self, name, experiments=3, seed=5):
        scenario = DEFAULT_REGISTRY.get(name)
        return scenario, analyze_study(
            run_single_study(scenario.build(experiments=experiments, seed=seed))
        )

    def states_of(self, experiment, machine):
        return [
            record.new_state
            for record in experiment.result.local_timelines[machine].records
            if record.is_state_change()
        ]

    def test_twophase_partition_forces_timeout_aborts_without_crashes(self):
        _, analysis = self.analyzed("two-phase-commit-partition", experiments=6)
        injected = [
            e
            for e in analysis.experiments
            if any(
                r.is_fault_injection()
                for r in e.result.local_timelines["coordinator"].records
            )
        ]
        assert injected, "the in-doubt partition fault never fired"
        for experiment in injected:
            # Nobody crashes — the fault is a pure substrate mutation...
            for machine in ("coordinator", "part1", "part2"):
                assert "CRASH" not in self.states_of(experiment, machine)
            # ...but the isolated coordinator aborts on its vote timeout,
            # and after the auto-heal the service commits again.
            assert "ABORT" in self.states_of(experiment, "coordinator")
            assert "COMMIT" in self.states_of(experiment, "coordinator")
        # The in-doubt participant times out into presumed abort in at
        # least some experiments (whether the partition lands before the
        # decision is exactly the partial-view race the paper studies, so
        # it does not happen in every run).
        assert any(
            "ABORTED" in self.states_of(experiment, "part1")
            for experiment in injected
        )

    def test_tokenring_partition_heal_keeps_ring_serving(self):
        _, analysis = self.analyzed("token-ring-partition-heal")
        for experiment in analysis.experiments:
            assert experiment.result.completed
            # node1 (alone on hosta) regenerates on its side of the split,
            # and the ring keeps serving after the heal: every member holds
            # the token at some point despite the 120 ms partition.
            for machine in ("node1", "node2", "node3"):
                assert "HOLDING" in self.states_of(experiment, machine), (
                    f"{machine} never held the token across the partition"
                )

    def test_election_one_way_outage_causes_reelection_split_brain(self):
        scenario, analysis = self.analyzed("leader-election-asym-link")
        values = analysis.measure_values(scenario.measure_factory())
        assert values, "no experiment survived analysis"
        # yellow entered an election at least twice: once at startup and
        # once when the one-way outage starved it of heartbeats.
        assert all(value is not None and value >= 2 for value in values)
        for experiment in analysis.experiments:
            # black never crashed — the second election is pure split brain.
            assert "CRASH" not in self.states_of(experiment, "black")


# ---------------------------------------------------------------------------
# Store resume with network-covering fingerprints
# ---------------------------------------------------------------------------


class KilledMidway(RuntimeError):
    pass


def campaign_for(name, experiments=3, seed=9):
    study = DEFAULT_REGISTRY.build(name, experiments=experiments, seed=seed)
    return CampaignConfig(name=f"store-{name}", studies=[study])


def measures_of(analysis, name):
    scenario = DEFAULT_REGISTRY.get(name)
    study_name = next(iter(analysis.studies))
    study_analysis = analysis.studies[study_name]
    measure = scenario.measure_factory()
    values = study_analysis.measure_values(measure)
    estimate = None
    if any(value is not None for value in values):
        estimate = estimate_campaign_measure(
            SimpleSamplingMeasure("headline"), analysis, {study_name: measure}
        ).to_dict()
    return values, estimate, [e.result.seed for e in study_analysis.experiments]


@pytest.mark.parametrize("scenario_name", NEW_SCENARIOS)
def test_partition_scenarios_resume_bit_identical(scenario_name, tmp_path, monkeypatch):
    campaign = campaign_for(scenario_name)
    baseline = measures_of(run_and_analyze(campaign), scenario_name)

    store = CampaignStore(tmp_path / "campaign")
    completed = 0

    def progress(name, done, total):
        nonlocal completed
        completed += 1
        if completed >= 2:
            raise KilledMidway

    from repro.core.execution import ExecutionConfig

    with pytest.raises(KilledMidway):
        run_and_analyze(campaign, ExecutionConfig(progress=progress), store=store)

    simulated = []
    original = CampaignRunner.run_experiment

    def counting(self, study, index):
        simulated.append(index)
        return original(self, study, index)

    monkeypatch.setattr(CampaignRunner, "run_experiment", counting)
    resumed = run_and_analyze(campaign, store=store)
    assert 0 < len(simulated) < 3, "resume should re-simulate only missing experiments"
    assert measures_of(resumed, scenario_name) == baseline


def test_version1_records_remain_readable():
    """Pre-topology (format 1) record lines still decode bit-exactly."""
    import json

    from repro.core.campaign import CampaignRunner
    from repro.store.format import decode_record, encode_record

    study = DEFAULT_REGISTRY.build("toggle", experiments=1, seed=3)
    result = CampaignRunner.run_experiment_of(study, 0)
    envelope = json.loads(encode_record(result))
    assert envelope["format"] == 2
    # A version-1 envelope differs only in the stamp (the payload of a
    # network-fault-free study is identical), and must stay decodable.
    envelope["format"] = 1
    decoded = decode_record(json.dumps(envelope))
    assert decoded.seed == result.seed
    assert decoded.local_timelines.keys() == result.local_timelines.keys()


def test_changed_network_model_invalidates_store(tmp_path):
    name = "token-ring-partition-heal"
    campaign = campaign_for(name, experiments=2)
    store = CampaignStore(tmp_path / "campaign")
    run_and_analyze(campaign, store=store)

    # Same scenario, same seed, but a different fault schedule: the
    # fingerprint (which covers StudyConfig.network) must reject a resume.
    from dataclasses import replace

    from repro.sim.topology import NetworkConfig

    study = campaign.studies[0]
    mutated = CampaignConfig(
        name=campaign.name,
        studies=[replace(study, network=NetworkConfig())],
    )
    with pytest.raises(StoreIntegrityError, match="fingerprint"):
        run_and_analyze(mutated, store=CampaignStore(tmp_path / "campaign"))
