"""Tests of the topology-aware network layer and its fault plumbing.

Covers the :class:`~repro.sim.topology.Topology` / ``LinkState`` model,
runtime link mutation (partitions, asymmetric outages, degradation, loss,
duplication, reordering), the structured delivery-event log, the
``NetworkFaultSpec`` textual round trip, state-triggered and scheduled
network faults threaded through the fault layer, and the store-fingerprint
coverage of the network model.
"""

import pytest

from repro.core.campaign import run_single_study
from repro.core.expression import StateAtom
from repro.core.faults import FaultParser
from repro.core.specs.fault_spec import (
    FaultDefinition,
    FaultSpecification,
    FaultTrigger,
    format_fault_specification,
    network_fault,
    parse_fault_specification,
)
from repro.errors import (
    RuntimeConfigurationError,
    RuntimePhaseError,
    SpecificationError,
)
from repro.pipeline import analyze_study
from repro.sim.environment import Environment
from repro.sim.kernel import SimKernel
from repro.sim.network import LAN_TCP_PROFILE, LinkProfile, NetworkModel
from repro.sim.process import SimProcess
from repro.sim.rng import RandomStreams
from repro.sim.topology import (
    NetworkConfig,
    NetworkFaultKind,
    NetworkFaultSpec,
    ScheduledNetworkFault,
    Topology,
    host_of,
)
from repro.store.manifest import study_fingerprint


def make_model(default=LAN_TCP_PROFILE):
    kernel = SimKernel()
    return kernel, NetworkModel(kernel, RandomStreams(1), default_profile=default)


FAST = LinkProfile(base_delay=1e-6, jitter_mean=0.0)


# ---------------------------------------------------------------------------
# Topology and link state
# ---------------------------------------------------------------------------


class TestTopology:
    def test_host_of_endpoint(self):
        assert host_of("hosta/p1") == "hosta"
        assert host_of("bare") == "bare"

    def test_intra_host_link_gets_ipc_profile(self):
        topology = Topology()
        assert topology.link("h", "h").profile == topology.ipc_profile
        assert topology.link("h", "g").profile == topology.default_profile

    def test_links_are_directed_and_lazy(self):
        topology = Topology()
        forward = topology.link("a", "b")
        backward = topology.link("b", "a")
        assert forward is not backward
        assert forward.name == "a->b"
        assert set(topology.links()) == {("a", "b"), ("b", "a")}

    def test_set_profile_symmetric_pins_both_directions(self):
        topology = Topology()
        topology.set_profile("a", "b", FAST, symmetric=True)
        assert topology.link("a", "b").profile == FAST
        assert topology.link("b", "a").profile == FAST

    def test_partition_needs_two_groups(self):
        with pytest.raises(RuntimeConfigurationError):
            Topology().partition([("a", "b")])

    def test_partition_separates_only_cross_group_pairs(self):
        topology = Topology()
        topology.partition([("a",), ("b", "c")])
        assert topology.is_partitioned("a", "b")
        assert topology.is_partitioned("c", "a")
        assert not topology.is_partitioned("b", "c")
        # Hosts not named in any group are unaffected.
        assert not topology.is_partitioned("a", "elsewhere")

    def test_remove_partition_token(self):
        topology = Topology()
        token = topology.partition([("a",), ("b",)])
        topology.partition([("a",), ("c",)])
        topology.remove_partition(token)
        assert not topology.is_partitioned("a", "b")
        assert topology.is_partitioned("a", "c")
        # Removing twice is harmless (a global heal may beat the timer).
        topology.remove_partition(token)

    def test_heal_restores_links_and_partitions(self):
        topology = Topology()
        topology.partition([("a",), ("b",)])
        link = topology.link("a", "b")
        link.up = False
        link.profile = FAST
        link.duplicate_probability = 0.5
        topology.heal()
        assert not topology.is_partitioned("a", "b")
        assert link.up
        assert link.profile == topology.default_profile
        assert link.duplicate_probability == 0.0

    def test_blocked_reason_precedence(self):
        topology = Topology()
        assert topology.blocked_reason("a", "b") is None
        topology.partition([("a",), ("b",)])
        assert topology.blocked_reason("a", "b") == "partitioned"
        topology.link("a", "b").up = False
        assert topology.blocked_reason("a", "b") == "link-down"


# ---------------------------------------------------------------------------
# Delivery over mutable links
# ---------------------------------------------------------------------------


class TestNetworkModelDelivery:
    def test_set_link_profile_accepts_endpoints(self):
        kernel, model = make_model(LinkProfile(base_delay=1.0, jitter_mean=0.0))
        # The pre-topology contract passed endpoints; they normalize to hosts.
        model.set_link_profile("a/p", "b/q", FAST)
        assert model.profile_for("a/x", "b/y") == FAST

    def test_asymmetric_link_down_blocks_one_direction_only(self):
        kernel, model = make_model(FAST)
        model.set_link_down("a", "b", symmetric=False)
        received = []
        model.send("a/p", "b/q", 1, deliver=lambda m: received.append(m.payload))
        model.send("b/q", "a/p", 2, deliver=lambda m: received.append(m.payload))
        kernel.run()
        assert received == [2]
        assert model.messages_dropped == 1
        assert [e.kind for e in model.events] == ["link-down"]

    def test_link_down_duration_auto_heals(self):
        kernel, model = make_model(FAST)
        model.set_link_down("a", "b", duration=0.5)
        received = []
        model.send("a/p", "b/q", "early", deliver=lambda m: received.append(m.payload))
        kernel.run(until=1.0)  # processes the scheduled auto-heal at t=0.5
        model.send("a/p", "b/q", "late", deliver=lambda m: received.append(m.payload))
        kernel.run()
        assert received == ["late"]

    def test_partition_duration_auto_heals(self):
        kernel, model = make_model(FAST)
        model.partition(("a",), ("b",), duration=0.5)
        received = []
        model.send("a/p", "b/q", "early", deliver=lambda m: received.append(m.payload))
        kernel.run(until=1.0)  # processes the scheduled auto-heal at t=0.5
        model.send("a/p", "b/q", "late", deliver=lambda m: received.append(m.payload))
        kernel.run()
        assert received == ["late"]
        kinds = [e.kind for e in model.events]
        assert kinds == ["partitioned"]

    def test_stale_link_down_expiry_does_not_cut_newer_outage_short(self):
        kernel, model = make_model(FAST)
        model.set_link_down("a", "b", duration=0.3)
        kernel.run(until=0.2)
        model.set_link_down("a", "b", duration=0.3)  # re-armed at t=0.2
        kernel.run(until=0.4)  # the first timer (t=0.3) must be a no-op
        assert not model.topology.link("a", "b").up
        kernel.run(until=0.6)  # the second timer (t=0.5) heals
        assert model.topology.link("a", "b").up

    def test_stale_partition_expiry_does_not_heal_newer_identical_partition(self):
        kernel, model = make_model(FAST)
        model.partition(("a",), ("b",), duration=0.2)
        kernel.run(until=0.1)
        model.heal()
        model.partition(("a",), ("b",))  # identical groups, no duration
        kernel.run(until=0.3)  # the stale t=0.2 timer must not remove it
        assert model.is_partitioned("a/p", "b/q")

    def test_overlapping_timed_degrades_restore_pristine_profile(self):
        kernel, model = make_model(FAST)
        slow = LinkProfile(base_delay=0.2, jitter_mean=0.0)
        model.degrade("a", "b", slow, duration=0.1)
        kernel.run(until=0.05)
        model.degrade("a", "b", slow, duration=0.1)  # re-armed mid-window
        kernel.run(until=0.12)  # first expiry: token mismatch, no-op
        assert model.profile_for("a/p", "b/q") == slow
        kernel.run(until=0.2)  # second expiry restores the pre-chain profile
        assert model.profile_for("a/p", "b/q") == FAST

    def test_permanent_degrade_becomes_baseline_for_timed_degrade(self):
        kernel, model = make_model(FAST)
        slow = LinkProfile(base_delay=0.2, jitter_mean=0.0)
        slower = LinkProfile(base_delay=0.5, jitter_mean=0.0)
        model.degrade("a", "b", slow)  # permanent: the new baseline
        model.degrade("a", "b", slower, duration=0.1)
        kernel.run(until=0.2)
        assert model.profile_for("a/p", "b/q") == slow

    def test_stale_degrade_expiry_does_not_stomp_newer_loss_setting(self):
        kernel, model = make_model(FAST)
        slow = LinkProfile(base_delay=0.2, jitter_mean=0.0)
        model.degrade("a", "b", slow, duration=0.1)
        kernel.run(until=0.05)
        model.set_loss("a", "b", probability=0.5)
        kernel.run(until=0.2)  # the degrade restore at t=0.1 must be a no-op
        assert model.topology.link("a", "b").profile.loss_probability == 0.5

    def test_degrade_with_duration_restores_previous_profile(self):
        kernel, model = make_model(FAST)
        slow = LinkProfile(base_delay=0.2, jitter_mean=0.0)
        model.degrade("a", "b", slow, duration=1.0)
        assert model.profile_for("a/p", "b/q") == slow
        kernel.run(until=2.0)  # processes the scheduled restore at t=1.0
        assert model.profile_for("a/p", "b/q") == FAST

    def test_set_loss_drops_and_records_events(self):
        kernel, model = make_model(FAST)
        model.set_loss("a", "b", probability=0.5)
        received = []
        for _ in range(200):
            model.send("a/p", "b/q", 1, deliver=lambda m: received.append(m))
        kernel.run()
        assert 0 < len(received) < 200
        lost = [e for e in model.events if e.kind == "lost"]
        assert len(lost) == 200 - len(received)
        assert model.messages_dropped == len(lost)
        assert lost[0].source == "a/p" and lost[0].destination == "b/q"

    def test_duplicate_delivers_twice_and_preserves_fifo(self):
        kernel, model = make_model(FAST)
        model.set_duplicate("a", "b", probability=1.0)
        received = []
        model.send("a/p", "b/q", "m1", deliver=lambda m: received.append(m.payload))
        model.send("a/p", "b/q", "m2", deliver=lambda m: received.append(m.payload))
        kernel.run()
        assert sorted(received) == ["m1", "m1", "m2", "m2"]
        assert model.messages_duplicated == 2
        assert received[0] == "m1"  # the first copy still arrives first
        assert [e.kind for e in model.events] == ["duplicated", "duplicated"]

    def test_reorder_lets_later_messages_overtake(self):
        kernel, model = make_model(LinkProfile(base_delay=1e-4, jitter_mean=0.0))
        # Reorder every message by up to a large window: with 20 messages
        # the arrival order almost surely differs from the send order.
        model.set_reorder("a", "b", probability=1.0, window=0.05)
        received = []
        for index in range(20):
            model.send("a/p", "b/q", index, deliver=lambda m: received.append(m.payload))
        kernel.run()
        assert sorted(received) == list(range(20))
        assert received != list(range(20))
        assert model.messages_reordered == 20

    def test_reorder_requires_positive_window(self):
        _, model = make_model(FAST)
        with pytest.raises(RuntimeConfigurationError):
            model.set_reorder("a", "b", probability=0.5, window=0.0)

    def test_default_path_consumes_identical_rng_stream(self):
        """The topology engine must not disturb the RNG draw order.

        A jittery, lossy profile exercises both draws; the reference is a
        hand-rolled replica of the pre-topology draw sequence on an
        identically seeded stream.
        """
        profile = LinkProfile(base_delay=1e-3, jitter_mean=1e-4, loss_probability=0.3)
        kernel, model = make_model(profile)
        arrivals = []
        for _ in range(50):
            model.send("a/p", "b/q", 0, deliver=lambda m: arrivals.append(kernel.now))
        kernel.run()

        reference_rng = RandomStreams(1).stream("network")
        expected = []
        floor = 0.0
        for _ in range(50):
            if reference_rng.random() < profile.loss_probability:
                continue
            arrival = max(profile.sample_delay(reference_rng), floor)
            floor = arrival
            expected.append(arrival)
        assert arrivals == pytest.approx(expected)


# ---------------------------------------------------------------------------
# NetworkFaultSpec: validation, text round trip, apply()
# ---------------------------------------------------------------------------


class TestNetworkFaultSpec:
    def round_trip(self, spec):
        token = spec.to_token()
        assert " " not in token
        assert NetworkFaultSpec.from_token(token) == spec
        return token

    def test_token_round_trips(self):
        self.round_trip(
            NetworkFaultSpec(
                kind=NetworkFaultKind.PARTITION,
                groups=(("hosta",), ("hostb", "hostc")),
                duration=0.08,
            )
        )
        self.round_trip(NetworkFaultSpec(kind=NetworkFaultKind.HEAL))
        self.round_trip(
            NetworkFaultSpec(
                kind=NetworkFaultKind.LINK_DOWN,
                link=("hosta", "hostb"),
                symmetric=False,
                duration=0.3,
            )
        )
        self.round_trip(
            NetworkFaultSpec(kind=NetworkFaultKind.LINK_UP, link=("hosta", "hostb"))
        )
        self.round_trip(
            NetworkFaultSpec(
                kind=NetworkFaultKind.DEGRADE,
                link=("hosta", "hostb"),
                profile=LinkProfile(base_delay=0.002, jitter_mean=0.0005, loss_probability=0.1),
            )
        )
        self.round_trip(
            NetworkFaultSpec(
                kind=NetworkFaultKind.SET_LOSS, link=("a", "b"), probability=0.25
            )
        )
        self.round_trip(
            NetworkFaultSpec(
                kind=NetworkFaultKind.SET_REORDER,
                link=("a", "b"),
                probability=0.5,
                window=0.002,
            )
        )

    def test_validation_rejects_malformed_specs(self):
        with pytest.raises(SpecificationError):
            NetworkFaultSpec(kind=NetworkFaultKind.PARTITION, groups=(("a",),))
        with pytest.raises(SpecificationError):
            NetworkFaultSpec(kind=NetworkFaultKind.LINK_DOWN)
        with pytest.raises(SpecificationError):
            NetworkFaultSpec(kind=NetworkFaultKind.DEGRADE, link=("a", "b"))
        with pytest.raises(SpecificationError):
            NetworkFaultSpec(kind=NetworkFaultKind.SET_LOSS, link=("a", "b"))
        with pytest.raises(SpecificationError):
            NetworkFaultSpec(
                kind=NetworkFaultKind.SET_LOSS, link=("a", "b"), probability=1.5
            )
        with pytest.raises(SpecificationError):
            NetworkFaultSpec(
                kind=NetworkFaultKind.SET_REORDER, link=("a", "b"), probability=0.5
            )
        with pytest.raises(SpecificationError):
            NetworkFaultSpec(
                kind=NetworkFaultKind.LINK_DOWN, link=("a", "b"), duration=-1.0
            )
        # Kinds with no way to undo themselves must reject a duration
        # instead of silently ignoring it.
        with pytest.raises(SpecificationError, match="duration"):
            NetworkFaultSpec(
                kind=NetworkFaultKind.SET_LOSS,
                link=("a", "b"),
                probability=0.5,
                duration=0.1,
            )
        with pytest.raises(SpecificationError, match="duration"):
            NetworkFaultSpec(kind=NetworkFaultKind.HEAL, duration=0.1)

    def test_host_names_clashing_with_token_grammar_rejected(self):
        # Delimiter characters (or the literal 'one-way') in a referenced
        # host name would make the token deserialize into a different spec.
        for bad in ("db+cache", "a|b", "a;b", "a=b", "one-way", "a->b", ""):
            with pytest.raises(SpecificationError, match="network fault"):
                NetworkFaultSpec(
                    kind=NetworkFaultKind.PARTITION, groups=((bad,), ("other",))
                )
            with pytest.raises(SpecificationError, match="network fault"):
                NetworkFaultSpec(kind=NetworkFaultKind.LINK_DOWN, link=(bad, "other"))

    def test_from_token_rejects_garbage(self):
        with pytest.raises(SpecificationError):
            NetworkFaultSpec.from_token("partition[a|b]")
        with pytest.raises(SpecificationError):
            NetworkFaultSpec.from_token("network:frobnicate[a|b]")
        with pytest.raises(SpecificationError):
            NetworkFaultSpec.from_token("network:set_loss[a->b;q=0.5]")

    def test_apply_records_mutations(self):
        kernel, model = make_model(FAST)
        spec = NetworkFaultSpec(
            kind=NetworkFaultKind.PARTITION, groups=(("a",), ("b",))
        )
        model.apply(spec, label="F1")
        assert model.is_partitioned("a/p", "b/q")
        assert len(model.mutations) == 1
        assert model.mutations[0].label == "F1"
        assert model.mutations[0].description == spec.to_token()
        model.apply(NetworkFaultSpec(kind=NetworkFaultKind.HEAL), label="F2")
        assert not model.is_partitioned("a/p", "b/q")

    def test_auto_undo_is_logged_on_the_mutation_timeline(self):
        kernel, model = make_model(FAST)
        model.apply(
            NetworkFaultSpec(
                kind=NetworkFaultKind.PARTITION,
                groups=(("a",), ("b",)),
                duration=0.1,
            ),
            label="F1",
        )
        model.apply(
            NetworkFaultSpec(
                kind=NetworkFaultKind.LINK_DOWN,
                link=("a", "c"),
                symmetric=False,
                duration=0.2,
            ),
            label="F2",
        )
        kernel.run(until=0.5)
        descriptions = [(m.label, m.description) for m in model.mutations]
        assert ("F1", "auto-heal partition") in descriptions
        assert ("F2", "auto link_up a->c") in descriptions
        times = [m.time for m in model.mutations]
        assert times == sorted(times)

    def test_apply_set_duplicate_and_link_up(self):
        _, model = make_model(FAST)
        model.apply(
            NetworkFaultSpec(
                kind=NetworkFaultKind.SET_DUPLICATE, link=("a", "b"), probability=0.5
            )
        )
        assert model.topology.link("a", "b").duplicate_probability == 0.5
        model.apply(
            NetworkFaultSpec(kind=NetworkFaultKind.LINK_DOWN, link=("a", "b"))
        )
        model.apply(NetworkFaultSpec(kind=NetworkFaultKind.LINK_UP, link=("a", "b")))
        assert model.topology.link("a", "b").up


# ---------------------------------------------------------------------------
# Fault-specification integration
# ---------------------------------------------------------------------------


class TestNetworkFaultSpecification:
    def spec(self):
        return NetworkFaultSpec(
            kind=NetworkFaultKind.PARTITION,
            groups=(("hosta",), ("hostb", "hostc")),
            duration=0.08,
        )

    def test_network_fault_helper_and_to_text(self):
        fault = network_fault("NP1", "((c:PREPARE) & (p:VOTED))", self.spec())
        assert fault.trigger is FaultTrigger.ONCE
        assert fault.to_text() == (
            "NP1 ((c:PREPARE) & (p:VOTED)) once "
            "network:partition[hosta|hostb+hostc;duration=0.08]"
        )

    def test_parse_format_round_trip_with_network_token(self):
        fault = network_fault("NP1", "((c:PREPARE) & (p:VOTED))", self.spec())
        specification = FaultSpecification.from_definitions([fault])
        text = format_fault_specification(specification)
        parsed = parse_fault_specification(text)
        assert parsed.get("NP1") == fault

    def test_parse_rejects_network_token_without_trigger(self):
        with pytest.raises(SpecificationError):
            parse_fault_specification("NP1 (c:PREPARE) network:heal")

    def test_fault_parser_applies_network_fault(self):
        kernel = SimKernel()
        model = NetworkModel(kernel, RandomStreams(0), default_profile=FAST)
        fault = network_fault("NP1", StateAtom("c", "PREPARE"), self.spec())
        parser = FaultParser(FaultSpecification.from_definitions([fault]))
        parser.attach_network_injector(
            lambda definition: model.apply(definition.network, label=definition.name)
            or kernel.now
        )
        performed = parser.on_view_change({"c": "PREPARE"})
        assert [request.fault.name for request in performed] == ["NP1"]
        assert model.is_partitioned("hosta/x", "hostb/y")

    def test_fault_parser_without_injector_raises(self):
        fault = network_fault("NP1", StateAtom("c", "PREPARE"), self.spec())
        parser = FaultParser(FaultSpecification.from_definitions([fault]))
        with pytest.raises(RuntimePhaseError, match="network"):
            parser.on_view_change({"c": "PREPARE"})


# ---------------------------------------------------------------------------
# Study-level plumbing: schedule, fingerprints
# ---------------------------------------------------------------------------


class TestStudyNetworkPlumbing:
    def test_scheduled_fault_rejects_negative_offset(self):
        with pytest.raises(SpecificationError):
            ScheduledNetworkFault(
                at=-1.0, spec=NetworkFaultSpec(kind=NetworkFaultKind.HEAL)
            )

    def test_environment_applies_link_profile_overrides(self):
        config = NetworkConfig(link_profiles=(("hosta", "hostb", FAST),))
        env = Environment(network=config)
        assert env.topology.link("hosta", "hostb").profile == FAST
        assert env.topology.link("hostb", "hosta").profile == env.lan_profile

    def test_fingerprint_covers_schedule_and_network_faults(self):
        from repro.apps.tokenring import build_tokenring_study

        plain = build_tokenring_study("ring", faults_by_machine={}, experiments=1)
        scheduled = build_tokenring_study(
            "ring",
            faults_by_machine={},
            network=NetworkConfig(
                schedule=(
                    ScheduledNetworkFault(
                        at=0.1,
                        spec=NetworkFaultSpec(
                            kind=NetworkFaultKind.PARTITION,
                            groups=(("hosta",), ("hostb", "hostc")),
                        ),
                    ),
                )
            ),
            experiments=1,
        )
        assert study_fingerprint(plain) != study_fingerprint(scheduled)

    def test_default_network_keeps_pre_topology_fingerprint_shape(self):
        """Studies that never touch the network model omit the key entirely.

        This keeps default-topology fingerprints identical to what the
        pre-topology implementation hashed, so campaign stores written
        before the refactor stay resumable.
        """
        from repro.apps.tokenring import build_tokenring_study
        from repro.store.manifest import study_description

        plain = build_tokenring_study("ring", faults_by_machine={}, experiments=1)
        assert "network" not in study_description(plain)
        configured = build_tokenring_study(
            "ring",
            faults_by_machine={},
            network=NetworkConfig(link_profiles=(("hosta", "hostb", FAST),)),
            experiments=1,
        )
        assert "network" in study_description(configured)

    def test_fingerprint_covers_state_triggered_network_fault(self):
        from repro.apps.twophase import build_twophase_study, coordinator_prepare_fault

        crash = build_twophase_study(
            "2pc",
            faults_by_machine={"coordinator": (coordinator_prepare_fault("coordinator"),)},
            experiments=1,
        )
        partition = build_twophase_study(
            "2pc",
            faults_by_machine={
                "coordinator": (
                    network_fault(
                        "cfault1",
                        StateAtom("coordinator", "PREPARE"),
                        NetworkFaultSpec(
                            kind=NetworkFaultKind.PARTITION,
                            groups=(("hosta",), ("hostb", "hostc")),
                        ),
                    ),
                )
            },
            experiments=1,
        )
        assert study_fingerprint(crash) != study_fingerprint(partition)

    def test_scheduled_partition_blocks_cross_host_traffic_in_study(self):
        """A scheduled partition visibly cuts substrate traffic mid-run."""
        from repro.apps.tokenring import build_tokenring_study

        study = build_tokenring_study(
            "ring-split",
            faults_by_machine={},
            network=NetworkConfig(
                schedule=(
                    ScheduledNetworkFault(
                        at=0.05,
                        spec=NetworkFaultSpec(
                            kind=NetworkFaultKind.PARTITION,
                            groups=(("hosta",), ("hostb", "hostc")),
                            duration=0.1,
                        ),
                        name="split",
                    ),
                )
            ),
            experiments=1,
            seed=3,
        )
        analysis = analyze_study(run_single_study(study))
        assert analysis.experiments[0].result.completed


# ---------------------------------------------------------------------------
# Environment bookkeeping: loss path, delivery events, duplicate names
# ---------------------------------------------------------------------------


class _Sender(SimProcess):
    """Sends a burst of messages to a fixed destination on start."""

    def __init__(self, name, destination, count=1):
        super().__init__(name)
        self.destination = destination
        self.count = count

    def start(self):
        for _ in range(self.count):
            self.send(self.destination, "ping")


class _Sink(SimProcess):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def receive(self, message):
        self.received.append(message.payload)


class TestEnvironmentBookkeeping:
    def make_env(self, **kwargs):
        env = Environment(seed=2, **kwargs)
        env.add_host("hosta")
        env.add_host("hostb")
        return env

    def test_lossy_lan_profile_drops_are_recorded(self):
        env = self.make_env(
            lan_profile=LinkProfile(base_delay=1e-6, jitter_mean=0.0, loss_probability=0.5)
        )
        sink = _Sink("sink")
        env.spawn(sink, "hostb")
        env.spawn(_Sender("sender", "sink", count=200), "hosta")
        env.run()
        lost = [e for e in env.delivery_events if e.kind == "lost"]
        assert 0 < len(sink.received) < 200
        assert len(lost) == 200 - len(sink.received)
        assert env.network.messages_dropped == len(lost)
        # Network-level events carry full endpoints.
        assert lost[0].source == "hosta/sender"
        assert lost[0].destination == "hostb/sink"

    def test_lossless_default_has_no_events(self):
        env = self.make_env()
        sink = _Sink("sink")
        env.spawn(sink, "hostb")
        env.spawn(_Sender("sender", "sink", count=20), "hosta")
        env.run()
        assert sink.received == ["ping"] * 20
        assert env.delivery_events == []

    def test_dead_target_recorded_as_structured_event(self):
        env = self.make_env()
        env.spawn(_Sender("sender", "ghost"), "hosta")
        env.run()
        assert ("sender", "ghost") in env.undeliverable
        events = env.delivery_events
        assert len(events) == 1
        assert events[0].kind == "dead-target"
        assert events[0].source == "sender"
        assert events[0].destination == "ghost"
        assert events[0].time >= 0.0

    def test_partitioned_send_recorded_not_silently_dropped(self):
        env = self.make_env()
        sink = _Sink("sink")
        env.spawn(sink, "hostb")
        sender = _Sender("sender", "sink")
        env.spawn(sender, "hosta")
        env.network.partition(("hosta",), ("hostb",))
        env.run()
        assert sink.received == []
        kinds = [e.kind for e in env.delivery_events]
        assert kinds == ["partitioned"]
        # The pair also shows up in the partition-aware query API.
        assert env.network.is_partitioned("hosta/sender", "hostb/sink")

    def test_duplicate_host_name_rejected_with_clear_error(self):
        env = self.make_env()
        with pytest.raises(RuntimeConfigurationError, match="hosta"):
            env.add_host("hosta")

    def test_host_name_with_slash_rejected(self):
        env = Environment()
        with pytest.raises(RuntimeConfigurationError, match="separator"):
            env.add_host("host/a")

    def test_duplicate_live_process_name_rejected_with_host_in_message(self):
        env = self.make_env()
        env.spawn(_Sink("worker"), "hosta")
        with pytest.raises(RuntimeConfigurationError, match="hosta"):
            env.spawn(_Sink("worker"), "hostb")

    def test_process_name_with_slash_rejected(self):
        env = self.make_env()
        with pytest.raises(RuntimeConfigurationError, match="separator"):
            env.spawn(_Sink("bad/name"), "hosta")

    def test_dead_process_name_reuse_still_allowed_for_restarts(self):
        env = self.make_env()
        first = _Sink("worker")
        env.spawn(first, "hosta")
        env.run()
        first.crash(reason="test")
        second = _Sink("worker")
        env.spawn(second, "hostb")
        assert env.process("worker") is second
