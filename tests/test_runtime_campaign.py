"""Integration tests of the runtime phase: daemons, designs, campaigns."""

import pytest

from repro.apps.toggle import (
    DRIVER,
    OBSERVER,
    ToggleDriverApplication,
    ToggleObserverApplication,
    build_toggle_study,
)
from repro.core.campaign import CampaignConfig, CampaignRunner, run_single_study
from repro.core.runtime.context import RestartPolicy, WatchdogConfig
from repro.core.runtime.designs import CommunicationMode, DaemonPlacement, RuntimeDesign
from repro.core.specs.state_machine import RESERVED_EVENTS
from repro.core.timeline import RecordKind
from repro.errors import RuntimeConfigurationError


def run_toggle(design=None, experiments=1, dwell=0.03, timeslice=0.002, seed=0):
    study = build_toggle_study(
        "toggle", dwell_time=dwell, timeslice=timeslice, cycles=3,
        experiments=experiments, design=design, seed=seed,
    )
    return study, run_single_study(study)


class TestRuntimeDesigns:
    def test_named_designs(self):
        enhanced = RuntimeDesign.enhanced()
        assert enhanced.placement is DaemonPlacement.PARTIALLY_DISTRIBUTED
        assert enhanced.via_daemon
        assert RuntimeDesign.original().communication is CommunicationMode.DIRECT
        assert len(RuntimeDesign.all_designs()) == 6

    def test_daemon_naming(self):
        enhanced = RuntimeDesign.enhanced()
        assert enhanced.daemon_name("hosta") == "lokid@hosta"
        centralized = RuntimeDesign(DaemonPlacement.CENTRALIZED, CommunicationMode.VIA_DAEMON)
        assert centralized.daemon_name("hosta") == centralized.daemon_name("hostb")
        fully = RuntimeDesign(DaemonPlacement.FULLY_DISTRIBUTED, CommunicationMode.VIA_DAEMON)
        assert fully.daemon_name("hosta", "black") == "lokid.black"

    def test_dynamic_capabilities(self):
        assert RuntimeDesign.enhanced().supports_dynamic_nodes
        fully = RuntimeDesign(DaemonPlacement.FULLY_DISTRIBUTED, CommunicationMode.DIRECT)
        assert not fully.supports_dynamic_nodes
        centralized = RuntimeDesign(DaemonPlacement.CENTRALIZED, CommunicationMode.DIRECT)
        assert centralized.supports_dynamic_hosts

    @pytest.mark.parametrize("design", RuntimeDesign.all_designs(),
                             ids=lambda design: design.describe())
    def test_toggle_runs_under_every_design(self, design):
        _, result = run_toggle(design=design)
        experiment = result.experiments[0]
        assert experiment.completed, experiment.abort_reason
        driver_states = [
            record.new_state for record in experiment.local_timelines[DRIVER].state_changes()
        ]
        assert driver_states[0] == "IDLE"
        assert "ACTIVE" in driver_states
        assert driver_states[-1] == "EXIT"
        # The observer received notifications and injected the fault at least once.
        assert len(experiment.local_timelines[OBSERVER].fault_injections()) >= 1


class TestCampaignRunner:
    def test_experiment_results_structure(self):
        study, result = run_toggle(experiments=2)
        assert len(result.experiments) == 2
        experiment = result.experiments[0]
        assert experiment.study == "toggle"
        assert set(experiment.machines) == {DRIVER, OBSERVER}
        assert set(experiment.hosts) == {"hosta", "hostb"}
        assert experiment.reference_host in experiment.hosts
        assert experiment.sync_messages
        assert experiment.stats["registrations"] == 2

    def test_experiments_are_deterministic_for_a_seed(self):
        _, first = run_toggle(experiments=1, seed=5)
        _, second = run_toggle(experiments=1, seed=5)
        a = first.experiments[0].local_timelines[OBSERVER]
        b = second.experiments[0].local_timelines[OBSERVER]
        assert [(r.kind, r.time) for r in a.records] == [(r.kind, r.time) for r in b.records]

    def test_different_experiments_use_different_clocks(self):
        _, result = run_toggle(experiments=2)
        clocks = [experiment.host_clock_parameters["hostb"] for experiment in result.experiments]
        assert clocks[0] != clocks[1]

    def test_sync_messages_flow_in_both_directions(self):
        _, result = run_toggle()
        experiment = result.experiments[0]
        senders = {message.sender for message in experiment.sync_messages}
        receivers = {message.receiver for message in experiment.sync_messages}
        assert experiment.reference_host in senders
        assert experiment.reference_host in receivers

    def test_campaign_of_multiple_studies(self):
        study_a = build_toggle_study("a", dwell_time=0.02, experiments=1)
        study_b = build_toggle_study("b", dwell_time=0.04, experiments=1)
        campaign = CampaignConfig(name="campaign", studies=[study_a, study_b])
        result = CampaignRunner(campaign).run()
        assert set(result.studies) == {"a", "b"}
        assert len(result.all_experiments()) == 2

    def test_duplicate_study_names_rejected(self):
        study = build_toggle_study("same", dwell_time=0.02)
        with pytest.raises(RuntimeConfigurationError):
            CampaignConfig(name="campaign", studies=[study, study])

    def test_timeout_aborts_hung_experiment(self):
        study = build_toggle_study("hung", dwell_time=0.02, cycles=2, experiments=1)
        # An observer that never exits hangs the experiment until the timeout.
        observer_node = study.nodes[1]
        object.__setattr__(observer_node, "application_factory",
                           lambda: ToggleObserverApplication(run_duration=1e6))
        study.experiment_timeout = 0.5
        result = run_single_study(study)
        experiment = result.experiments[0]
        assert experiment.aborted
        assert experiment.abort_reason == "experiment timeout"
        assert not experiment.completed

    def test_timeline_header_includes_reserved_names(self):
        _, result = run_toggle()
        timeline = result.experiments[0].local_timelines[DRIVER]
        assert RESERVED_EVENTS.issubset(set(timeline.events))
        assert "CRASH" in timeline.global_states


class TestCrashAndRestart:
    def build_crashing_study(self, restart_policy, watchdog=None, seed=3):
        """A driver that crashes mid-run instead of cycling."""
        from repro.core.runtime.application import LokiApplication

        class CrashingDriver(ToggleDriverApplication):
            def on_start(self, ctx):
                if ctx.is_restart:
                    ctx.notify_event("IDLE")
                    ctx.set_timer(0.05, lambda: ctx.exit())
                    return
                ctx.notify_event("IDLE")
                ctx.set_timer(0.05, lambda: ctx.crash(reason="test crash"))

            def on_restart(self, ctx):
                self.on_start(ctx)

        study = build_toggle_study("crashing", dwell_time=0.02, cycles=2,
                                   experiments=1, seed=seed)
        object.__setattr__(study.nodes[0], "application_factory", CrashingDriver)
        object.__setattr__(study.nodes[1], "application_factory",
                           lambda: ToggleObserverApplication(run_duration=0.4))
        study.restart_policy = restart_policy
        if watchdog is not None:
            study.watchdog = watchdog
        return study

    def test_crash_recorded_and_experiment_completes(self):
        study = self.build_crashing_study(RestartPolicy(enabled=False))
        result = run_single_study(study)
        experiment = result.experiments[0]
        assert experiment.completed
        timeline = experiment.local_timelines[DRIVER]
        assert timeline.final_state() == "CRASH"
        crash_records = [r for r in timeline.state_changes() if r.new_state == "CRASH"]
        assert len(crash_records) == 1

    def test_restart_on_next_host(self):
        policy = RestartPolicy(enabled=True, delay=0.02, max_restarts=1, restart_host="next")
        study = self.build_crashing_study(policy)
        result = run_single_study(study)
        experiment = result.experiments[0]
        assert experiment.completed
        timeline = experiment.local_timelines[DRIVER]
        assert experiment.stats.get("nodes_restarted", 0) == 1
        # The timeline shows records from two different hosts.
        assert len(set(timeline.hosts())) == 2
        assert any("RESTART" in note for note in timeline.notes)

    def test_restart_success_probability_zero_means_no_restart(self):
        policy = RestartPolicy(enabled=True, delay=0.02, max_restarts=1,
                               success_probability=0.0)
        study = self.build_crashing_study(policy)
        result = run_single_study(study)
        assert result.experiments[0].stats.get("nodes_restarted", 0) == 0

    def test_restart_host_validation(self):
        policy = RestartPolicy(enabled=True, restart_host="unknown-host")
        with pytest.raises(RuntimeConfigurationError):
            policy.choose_host("hosta", ("hosta", "hostb"))

    def test_restart_host_choices(self):
        hosts = ("hosta", "hostb", "hostc")
        assert RestartPolicy(restart_host="same").choose_host("hostb", hosts) == "hostb"
        assert RestartPolicy(restart_host="next").choose_host("hostb", hosts) == "hostc"
        assert RestartPolicy(restart_host="next").choose_host("hostc", hosts) == "hosta"
        assert RestartPolicy(restart_host="hosta").choose_host("hostc", hosts) == "hosta"
