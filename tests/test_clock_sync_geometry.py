"""Equivalence of the geometric clock-sync solver and the scipy LP path.

The exact geometric solver (:func:`repro.analysis.clock_sync.
estimate_clock_bounds`) must be indistinguishable from the historical
linear-programming implementation (:func:`estimate_clock_bounds_lp`, kept
as a test-only cross-check): the alpha/beta extremes agree within 1e-9,
the polygon vertex sets are identical after near-duplicate dedup, and both
raise :class:`ClockSynchronizationError` on unbounded or infeasible
constraint sets.

Following the conventions of ``tests/test_statistics_properties.py``, the
properties run twice: against a deterministic table of seeded random
sync-message sets (always), and against hypothesis-generated ones when
``hypothesis`` is installed.  Both paths share the same check functions.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.clock_sync import (
    SyncMessageRecord,
    _dedupe_vertices,
    _feasible_vertices,
    estimate_clock_bounds,
    estimate_clock_bounds_lp,
)
from repro.errors import ClockSynchronizationError
from repro.sim.clock import ClockParameters, HardwareClock

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ModuleNotFoundError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

#: Agreement tolerance between the two solvers (absolute, per coordinate).
TOLERANCE = 1e-9


def make_messages(
    offset: float,
    drift_ppm: float,
    seed: int,
    count: int = 15,
    delay: float = 200e-6,
    jitter: float = 50e-6,
) -> list[SyncMessageRecord]:
    """Bidirectional getstamps exchanges between two hosts with known clocks."""
    reference = HardwareClock(ClockParameters(offset=0.0, rate=1.0))
    other = HardwareClock(ClockParameters(offset=offset, rate=1.0 + drift_ppm * 1e-6))
    rng = random.Random(seed)
    messages: list[SyncMessageRecord] = []
    for phase_start in (0.0, 1.0):
        for index in range(count):
            send = phase_start + index * 0.001
            receive = send + delay + rng.random() * jitter
            messages.append(
                SyncMessageRecord(
                    sender="ref",
                    receiver="other",
                    send_time=reference.read(send),
                    receive_time=other.read(receive),
                )
            )
            send = phase_start + index * 0.001 + 0.0005
            receive = send + delay + rng.random() * jitter
            messages.append(
                SyncMessageRecord(
                    sender="other",
                    receiver="ref",
                    send_time=other.read(send),
                    receive_time=reference.read(receive),
                )
            )
    return messages


# ---------------------------------------------------------------------------
# Shared check functions
# ---------------------------------------------------------------------------


def check_solver_equivalence(messages: list[SyncMessageRecord]) -> None:
    geometric = estimate_clock_bounds(messages, "other", "ref")
    lp = estimate_clock_bounds_lp(messages, "other", "ref")
    assert math.isclose(geometric.alpha_lower, lp.alpha_lower, abs_tol=TOLERANCE)
    assert math.isclose(geometric.alpha_upper, lp.alpha_upper, abs_tol=TOLERANCE)
    assert math.isclose(geometric.beta_lower, lp.beta_lower, abs_tol=TOLERANCE)
    assert math.isclose(geometric.beta_upper, lp.beta_upper, abs_tol=TOLERANCE)
    # Identical vertex sets: both solvers dedupe and order canonically.
    assert len(geometric.vertices) == len(lp.vertices), (
        f"vertex count differs: geometric {geometric.vertices} vs LP {lp.vertices}"
    )
    for (g_alpha, g_beta), (l_alpha, l_beta) in zip(geometric.vertices, lp.vertices):
        assert math.isclose(g_alpha, l_alpha, abs_tol=TOLERANCE)
        assert math.isclose(g_beta, l_beta, abs_tol=TOLERANCE)


def check_bounds_contain_truth(messages: list[SyncMessageRecord], offset, drift_ppm) -> None:
    reference = HardwareClock(ClockParameters(offset=0.0, rate=1.0))
    other = HardwareClock(ClockParameters(offset=offset, rate=1.0 + drift_ppm * 1e-6))
    bounds = estimate_clock_bounds(messages, "other", "ref")
    alpha, beta = other.relative_to(reference)
    assert bounds.contains(alpha, beta)
    local = other.read(0.5)
    lower, upper = bounds.project_to_reference(local)
    assert lower - 1e-9 <= reference.read(0.5) <= upper + 1e-9


def seeded_cases() -> list[tuple[float, float, int, int]]:
    """(offset, drift_ppm, seed, count) table covering the realistic range."""
    rng = random.Random(0x51C0)
    cases: list[tuple[float, float, int, int]] = []
    for index in range(30):
        cases.append(
            (
                rng.uniform(-0.01, 0.01),
                rng.uniform(-200.0, 200.0),
                rng.randrange(10_000),
                rng.choice((3, 8, 15, 40)),
            )
        )
    return cases


# ---------------------------------------------------------------------------
# Deterministic seeded-random path (always runs)
# ---------------------------------------------------------------------------


class TestSeededEquivalence:
    def test_extremes_and_vertices_match_lp(self):
        for offset, drift_ppm, seed, count in seeded_cases():
            check_solver_equivalence(make_messages(offset, drift_ppm, seed, count))

    def test_bounds_contain_truth(self):
        for offset, drift_ppm, seed, count in seeded_cases():
            check_bounds_contain_truth(
                make_messages(offset, drift_ppm, seed, count), offset, drift_ppm
            )


# ---------------------------------------------------------------------------
# Registry scenarios: the solvers agree on every real workload's messages
# ---------------------------------------------------------------------------


class TestRegistryScenarioEquivalence:
    def test_solvers_agree_on_every_registered_scenario(self):
        from repro.core.campaign import run_single_study
        from repro.scenarios import default_registry

        registry = default_registry()
        for offset, name in enumerate(registry.names()):
            study = registry.get(name).build(experiments=1, seed=31 + offset)
            result = run_single_study(study).experiments[0]
            for host in result.hosts:
                geometric = estimate_clock_bounds(
                    result.sync_messages, host, result.reference_host
                )
                lp = estimate_clock_bounds_lp(
                    result.sync_messages, host, result.reference_host
                )
                assert math.isclose(
                    geometric.alpha_lower, lp.alpha_lower, abs_tol=TOLERANCE
                ), name
                assert math.isclose(
                    geometric.alpha_upper, lp.alpha_upper, abs_tol=TOLERANCE
                ), name
                assert math.isclose(
                    geometric.beta_lower, lp.beta_lower, abs_tol=TOLERANCE
                ), name
                assert math.isclose(
                    geometric.beta_upper, lp.beta_upper, abs_tol=TOLERANCE
                ), name
                assert len(geometric.vertices) == len(lp.vertices), name
                for geometric_vertex, lp_vertex in zip(geometric.vertices, lp.vertices):
                    assert math.isclose(
                        geometric_vertex[0], lp_vertex[0], abs_tol=TOLERANCE
                    ), name
                    assert math.isclose(
                        geometric_vertex[1], lp_vertex[1], abs_tol=TOLERANCE
                    ), name


# ---------------------------------------------------------------------------
# Degenerate inputs: both solvers must fail the same way
# ---------------------------------------------------------------------------


class TestDegenerateEquivalence:
    def test_unbounded_unidirectional_messages(self):
        messages = [
            message
            for message in make_messages(0.001, 50.0, seed=3)
            if message.sender == "ref"
        ]
        with pytest.raises(ClockSynchronizationError):
            estimate_clock_bounds(messages, "other", "ref")
        with pytest.raises(ClockSynchronizationError):
            estimate_clock_bounds_lp(messages, "other", "ref")

    def test_unbounded_reverse_direction_only(self):
        messages = [
            message
            for message in make_messages(0.001, 50.0, seed=3)
            if message.sender == "other"
        ]
        with pytest.raises(ClockSynchronizationError):
            estimate_clock_bounds(messages, "other", "ref")
        with pytest.raises(ClockSynchronizationError):
            estimate_clock_bounds_lp(messages, "other", "ref")

    def test_infeasible_contradictory_messages(self):
        # alpha + beta <= 0 together with alpha + beta >= 1 cannot hold.
        messages = [
            SyncMessageRecord("ref", "other", send_time=1.0, receive_time=0.0),
            SyncMessageRecord("other", "ref", send_time=1.0, receive_time=1.0),
        ]
        with pytest.raises(ClockSynchronizationError):
            estimate_clock_bounds(messages, "other", "ref")
        with pytest.raises(ClockSynchronizationError):
            estimate_clock_bounds_lp(messages, "other", "ref")

    def test_no_messages(self):
        with pytest.raises(ClockSynchronizationError):
            estimate_clock_bounds([], "other", "ref")
        with pytest.raises(ClockSynchronizationError):
            estimate_clock_bounds_lp([], "other", "ref")


# ---------------------------------------------------------------------------
# Vertex dedup (near-concurrent constraint lines)
# ---------------------------------------------------------------------------


class TestVertexDedup:
    def test_near_duplicate_vertices_are_merged(self):
        points = [
            (0.001, 1.0),
            (0.001 + 1e-13, 1.0 - 1e-13),
            (0.001 - 1e-13, 1.0 + 1e-13),
            (0.002, 1.0),
        ]
        deduped = _dedupe_vertices(points)
        assert len(deduped) == 2

    def test_feasible_vertices_dedupes_concurrent_lines(self):
        import numpy as np

        # Three upper constraints through (0, 1) within floating-point
        # noise of each other, plus two lower constraints: the pairwise
        # enumeration would emit a cloud of near-identical corners.
        a_ub = np.array(
            [
                [1.0, 1.0],
                [1.0, 1.0 + 1e-12],
                [1.0, 1.0 - 1e-12],
                [-1.0, -0.5],
                [-1.0, -2.0],
            ]
        )
        b_ub = np.array([1.0, 1.0, 1.0, 0.2, -0.5])
        vertices = _feasible_vertices(a_ub, b_ub)
        # Two interior corners plus the two beta-floor corners (this
        # polygon extends down to beta = 0, so the floor clips it) — the
        # nine near-identical pairwise intersections collapse to these.
        assert len(vertices) == 4
        for index, left in enumerate(vertices):
            for right in vertices[index + 1 :]:
                assert abs(left[0] - right[0]) > 1e-10 or abs(left[1] - right[1]) > 1e-10

    def test_solvers_agree_on_nearly_concurrent_constraints(self):
        # Many messages with identical timestamps except jitter below the
        # dedup tolerance produce nearly concurrent constraint lines.
        messages = []
        for wiggle in (0.0, 1e-13, 2e-13):
            messages.append(
                SyncMessageRecord("ref", "other", 0.0, 0.0002 + wiggle)
            )
            messages.append(
                SyncMessageRecord("other", "ref", 0.0005 + wiggle, 0.0009)
            )
            messages.append(
                SyncMessageRecord("ref", "other", 1.0, 1.0002 + wiggle)
            )
            messages.append(
                SyncMessageRecord("other", "ref", 1.0005 + wiggle, 1.0009)
            )
        check_solver_equivalence(messages)


# ---------------------------------------------------------------------------
# Hypothesis path (runs when hypothesis is installed)
# ---------------------------------------------------------------------------


if HAVE_HYPOTHESIS:

    class TestHypothesisEquivalence:
        @given(
            offset=st.floats(min_value=-0.01, max_value=0.01),
            drift_ppm=st.floats(min_value=-200, max_value=200),
            seed=st.integers(min_value=0, max_value=10_000),
            count=st.integers(min_value=2, max_value=25),
        )
        @settings(max_examples=40, deadline=None)
        def test_extremes_and_vertices_match_lp(self, offset, drift_ppm, seed, count):
            check_solver_equivalence(make_messages(offset, drift_ppm, seed, count))

        @given(
            offset=st.floats(min_value=-0.01, max_value=0.01),
            drift_ppm=st.floats(min_value=-200, max_value=200),
            seed=st.integers(min_value=0, max_value=10_000),
        )
        @settings(max_examples=40, deadline=None)
        def test_bounds_contain_truth(self, offset, drift_ppm, seed):
            check_bounds_contain_truth(
                make_messages(offset, drift_ppm, seed), offset, drift_ppm
            )
