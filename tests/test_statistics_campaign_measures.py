"""Tests for moment statistics and campaign-level measures."""

import math
import statistics as stdlib_statistics

import numpy
import pytest
from hypothesis import given, strategies as st

from repro.errors import StatisticsError
from repro.measures.campaign_measures import (
    SimpleSamplingMeasure,
    StratifiedUserMeasure,
    StratifiedWeightedMeasure,
)
from repro.measures.statistics import (
    central_from_raw,
    combine_stratified,
    raw_moments,
    summarize_sample,
)


class TestMoments:
    def test_raw_moments_simple(self):
        m1, m2, m3, m4 = raw_moments([1.0, 2.0, 3.0])
        assert m1 == pytest.approx(2.0)
        assert m2 == pytest.approx(14.0 / 3.0)
        assert m3 == pytest.approx(36.0 / 3.0)
        assert m4 == pytest.approx(98.0 / 3.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(StatisticsError):
            raw_moments([])

    def test_central_moments_match_numpy(self):
        values = [1.5, 2.25, -0.5, 4.0, 3.25, 0.75]
        summary = summarize_sample(values)
        array = numpy.asarray(values)
        assert summary.mean == pytest.approx(array.mean())
        assert summary.variance == pytest.approx(((array - array.mean()) ** 2).mean())
        assert summary.central_moment_3 == pytest.approx(((array - array.mean()) ** 3).mean())
        assert summary.central_moment_4 == pytest.approx(((array - array.mean()) ** 4).mean())

    def test_skewness_and_kurtosis_coefficients(self):
        values = [0.0, 0.0, 0.0, 1.0]
        summary = summarize_sample(values)
        mu2 = summary.central_moment_2
        assert summary.skewness_coefficient == pytest.approx(
            summary.central_moment_3**2 / mu2**3
        )
        assert summary.kurtosis_coefficient == pytest.approx(summary.central_moment_4 / mu2**2)

    def test_degenerate_sample(self):
        summary = summarize_sample([2.0, 2.0, 2.0])
        assert summary.variance == 0.0
        assert summary.skewness == 0.0
        assert summary.percentile(0.9) == pytest.approx(2.0)

    def test_percentile_normal_sample(self):
        rng = numpy.random.default_rng(0)
        values = rng.normal(loc=10.0, scale=2.0, size=4000).tolist()
        summary = summarize_sample(values)
        estimate = summary.percentile(0.95)
        expected = 10.0 + 1.6449 * 2.0
        assert estimate == pytest.approx(expected, rel=0.05)

    def test_percentile_bounds_checked(self):
        summary = summarize_sample([1.0, 2.0])
        with pytest.raises(StatisticsError):
            summary.percentile(0.0)
        with pytest.raises(StatisticsError):
            summary.percentile(1.5)

    def test_confidence_interval_contains_mean(self):
        summary = summarize_sample([1.0, 2.0, 3.0, 4.0])
        low, high = summary.confidence_interval(0.95)
        assert low < summary.mean < high

    def test_central_from_raw_equations(self):
        # Equations 4.1-4.3 applied to a hand-computed example.
        values = [1.0, 3.0]
        m1, m2, m3, m4 = raw_moments(values)
        mu2, mu3, mu4 = central_from_raw(m1, m2, m3, m4)
        assert mu2 == pytest.approx(1.0)
        assert mu3 == pytest.approx(0.0)
        assert mu4 == pytest.approx(1.0)


@given(
    values=st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=2, max_size=40
    )
)
def test_property_moments_match_reference_formulas(values):
    summary = summarize_sample(values)
    mean = stdlib_statistics.fmean(values)
    assert summary.mean == pytest.approx(mean, abs=1e-6)
    centred = [(value - mean) ** 2 for value in values]
    assert summary.variance == pytest.approx(sum(centred) / len(values), abs=1e-5)


class TestCampaignMeasures:
    study_values = {
        "study1": [1.0, 1.0, 0.0, 1.0],
        "study2": [0.0, 0.0, 1.0, 0.0],
        "study3": [1.0, 1.0, 1.0, 1.0],
    }

    def test_simple_sampling_pools_all_values(self):
        result = SimpleSamplingMeasure("pooled").estimate(self.study_values)
        assert result.samples_used == 12
        assert result.value == pytest.approx(8.0 / 12.0)
        assert result.kind == "simple_sampling"
        assert set(result.per_study) == set(self.study_values)

    def test_simple_sampling_ignores_filtered_experiments(self):
        values = {"study1": [1.0, None, 0.0]}
        result = SimpleSamplingMeasure("pooled").estimate(values)
        assert result.samples_used == 2
        assert result.value == pytest.approx(0.5)

    def test_simple_sampling_requires_some_values(self):
        with pytest.raises(StatisticsError):
            SimpleSamplingMeasure("pooled").estimate({"study1": [None, None]})

    def test_stratified_weighted_mean_is_weighted(self):
        weights = {"study1": 2.0, "study2": 1.0, "study3": 1.0}
        result = StratifiedWeightedMeasure("coverage", weights).estimate(self.study_values)
        expected = (2.0 * 0.75 + 1.0 * 0.25 + 1.0 * 1.0) / 4.0
        assert result.value == pytest.approx(expected)
        assert result.summary is not None
        assert result.summary.central_moment_2 >= 0.0

    def test_stratified_weighted_equal_weights_matches_mean_of_means(self):
        weights = {name: 1.0 for name in self.study_values}
        result = StratifiedWeightedMeasure("m", weights).estimate(self.study_values)
        means = [0.75, 0.25, 1.0]
        assert result.value == pytest.approx(sum(means) / 3.0)

    def test_stratified_weighted_missing_study_values_rejected(self):
        weights = {"study1": 1.0}
        with pytest.raises(StatisticsError):
            StratifiedWeightedMeasure("m", weights).estimate({"study1": [None]})

    def test_stratified_weighted_missing_weight_rejected(self):
        with pytest.raises(StatisticsError):
            StratifiedWeightedMeasure("m", {"study1": 1.0}).estimate(self.study_values)

    def test_stratified_user_measure(self):
        def overall_coverage(means):
            weights = {"study1": 3.0, "study2": 1.0, "study3": 1.0}
            total = sum(weights.values())
            return sum(weights[name] * mean for name, mean in means.items()) / total

        result = StratifiedUserMeasure("user", overall_coverage).estimate(self.study_values)
        assert result.value == pytest.approx((3 * 0.75 + 0.25 + 1.0) / 5.0)
        assert result.summary is None
        with pytest.raises(StatisticsError):
            result.percentile(0.9)

    def test_combine_stratified_requires_positive_weights(self):
        summaries = {"a": summarize_sample([1.0, 2.0])}
        with pytest.raises(StatisticsError):
            combine_stratified(summaries, {"a": 0.0})

    def test_combine_stratified_weighted_moments(self):
        summaries = {
            "a": summarize_sample([0.0, 2.0]),
            "b": summarize_sample([10.0, 14.0]),
        }
        combined = combine_stratified(summaries, {"a": 1.0, "b": 3.0})
        assert combined.mean == pytest.approx(0.25 * 1.0 + 0.75 * 12.0)
        assert combined.central_moment_2 == pytest.approx(0.25 * 1.0 + 0.75 * 4.0)
        assert combined.count == 4
