"""Unit and property-based tests for Boolean fault expressions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.expression import And, Not, Or, StateAtom, conjunction, disjunction, parse_expression
from repro.errors import ExpressionError


class TestAtoms:
    def test_atom_true_when_machine_in_state(self):
        atom = StateAtom("SM1", "ELECT")
        assert atom.evaluate({"SM1": "ELECT"})
        assert not atom.evaluate({"SM1": "FOLLOW"})

    def test_atom_false_when_machine_unknown(self):
        assert not StateAtom("SM1", "ELECT").evaluate({})

    def test_atom_text(self):
        assert StateAtom("SM1", "ELECT").to_text() == "(SM1:ELECT)"

    def test_machines_and_atoms(self):
        atom = StateAtom("black", "LEAD")
        assert atom.machines() == frozenset({"black"})
        assert atom.atoms() == frozenset({atom})


class TestOperators:
    view = {"SM1": "ELECT", "SM2": "FOLLOW", "SM3": "CRASH"}

    def test_and(self):
        expression = And(StateAtom("SM1", "ELECT"), StateAtom("SM2", "FOLLOW"))
        assert expression.evaluate(self.view)
        assert not expression.evaluate({"SM1": "ELECT", "SM2": "LEAD"})

    def test_or(self):
        expression = Or(StateAtom("SM1", "LEAD"), StateAtom("SM2", "FOLLOW"))
        assert expression.evaluate(self.view)
        assert not expression.evaluate({"SM1": "X", "SM2": "Y"})

    def test_not(self):
        assert Not(StateAtom("SM1", "LEAD")).evaluate(self.view)
        assert not Not(StateAtom("SM1", "ELECT")).evaluate(self.view)

    def test_nested_machines(self):
        expression = And(
            StateAtom("SM1", "A"), Or(StateAtom("SM2", "B"), Not(StateAtom("SM3", "C")))
        )
        assert expression.machines() == frozenset({"SM1", "SM2", "SM3"})
        assert len(expression.atoms()) == 3

    def test_conjunction_and_disjunction_helpers(self):
        atoms = [StateAtom("A", "X"), StateAtom("B", "Y"), StateAtom("C", "Z")]
        assert conjunction(atoms).evaluate({"A": "X", "B": "Y", "C": "Z"})
        assert not conjunction(atoms).evaluate({"A": "X", "B": "Y"})
        assert disjunction(atoms).evaluate({"C": "Z"})
        with pytest.raises(ExpressionError):
            conjunction([])
        with pytest.raises(ExpressionError):
            disjunction([])


class TestParser:
    def test_parse_single_atom(self):
        expression = parse_expression("(SM1:ELECT)")
        assert expression == StateAtom("SM1", "ELECT")

    def test_parse_atom_without_parentheses(self):
        assert parse_expression("SM1:ELECT") == StateAtom("SM1", "ELECT")

    def test_parse_paper_example(self):
        expression = parse_expression("((SM1:ELECT) & (SM2:FOLLOW))")
        assert expression.evaluate({"SM1": "ELECT", "SM2": "FOLLOW"})
        assert not expression.evaluate({"SM1": "ELECT", "SM2": "ELECT"})

    def test_parse_chapter5_gfault2(self):
        expression = parse_expression("((black:CRASH) & ((green:FOLLOW) | (green:ELECT)))")
        assert expression.evaluate({"black": "CRASH", "green": "FOLLOW"})
        assert expression.evaluate({"black": "CRASH", "green": "ELECT"})
        assert not expression.evaluate({"black": "CRASH", "green": "LEAD"})
        assert not expression.evaluate({"black": "LEAD", "green": "FOLLOW"})

    def test_parse_not(self):
        expression = parse_expression("~(SM1:LEAD)")
        assert expression.evaluate({"SM1": "FOLLOW"})
        assert not expression.evaluate({"SM1": "LEAD"})

    def test_precedence_and_binds_tighter_than_or(self):
        expression = parse_expression("(A:X) | (B:Y) & (C:Z)")
        # Must parse as A:X | (B:Y & C:Z).
        assert expression.evaluate({"A": "X"})
        assert expression.evaluate({"B": "Y", "C": "Z"})
        assert not expression.evaluate({"B": "Y"})

    def test_roundtrip_through_text(self):
        source = "((black:CRASH) & ((green:FOLLOW) | (~(yellow:LEAD))))"
        expression = parse_expression(source)
        assert parse_expression(expression.to_text()) == expression

    def test_whitespace_insensitive(self):
        a = parse_expression("((SM1:ELECT)&(SM2:FOLLOW))")
        b = parse_expression("( ( SM1 : ELECT )  &  ( SM2 : FOLLOW ) )")
        assert a == b

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "()",
            "(SM1:)",
            "(SM1:A) &",
            "(SM1:A) (SM2:B)",
            "(SM1:A) ? (SM2:B)",
            "((SM1:A)",
        ],
    )
    def test_malformed_expressions_rejected(self, bad):
        with pytest.raises(ExpressionError):
            parse_expression(bad)


# -- property-based tests -------------------------------------------------------------

_machines = st.sampled_from(["SM1", "SM2", "SM3"])
_states = st.sampled_from(["A", "B", "C"])


def _expressions(depth=3):
    atom = st.builds(StateAtom, _machines, _states)
    if depth == 0:
        return atom
    sub = _expressions(depth - 1)
    return st.one_of(
        atom,
        st.builds(Not, sub),
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
    )


_views = st.dictionaries(_machines, _states, max_size=3)


@given(expression=_expressions(), view=_views)
def test_text_roundtrip_preserves_semantics(expression, view):
    reparsed = parse_expression(expression.to_text())
    assert reparsed.evaluate(view) == expression.evaluate(view)


@given(expression=_expressions(), view=_views)
def test_double_negation_preserves_value(expression, view):
    assert Not(Not(expression)).evaluate(view) == expression.evaluate(view)


@given(expression=_expressions(), view=_views)
def test_de_morgan(expression, view):
    other = StateAtom("SM1", "A")
    lhs = Not(And(expression, other)).evaluate(view)
    rhs = Or(Not(expression), Not(other)).evaluate(view)
    assert lhs == rhs


@given(expression=_expressions())
def test_machines_is_union_of_atom_machines(expression):
    assert expression.machines() == frozenset(atom.machine for atom in expression.atoms())
