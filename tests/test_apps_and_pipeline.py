"""End-to-end tests: example applications through the full three-phase pipeline."""

import pytest

from repro.apps.election import (
    ElectionParameters,
    build_election_study,
    correlated_follower_fault,
    election_state_machine_spec,
    leader_fault,
    uncorrelated_follower_fault,
)
from repro.apps.replication import (
    ReplicationParameters,
    build_replication_study,
    primary_during_sync_fault,
    replication_state_machine_spec,
)
from repro.apps.toggle import build_toggle_study
from repro.core.campaign import run_single_study
from repro.core.runtime.context import RestartPolicy
from repro.measures import (
    MeasureStep,
    SimpleSamplingMeasure,
    StateTuple,
    StratifiedWeightedMeasure,
    StudyMeasure,
    TotalDuration,
    UserObservation,
    value_positive,
)
from repro.pipeline import analyze_study, correct_injection_fraction


def election_parameters(favored=None, **kwargs):
    machines = ("black", "yellow", "green")
    return {
        machine: ElectionParameters(
            run_duration=0.5, favored=(machine == favored), **kwargs
        )
        for machine in machines
    }


def coverage_measure(machine="black"):
    """The Section 5.8 coverage study measure, as an indicator value."""
    indicator = UserObservation(
        lambda timeline: 1.0 if timeline.true_duration() > 0 else 0.0, name="duration>0"
    )
    return StudyMeasure(
        name=f"{machine}-coverage",
        steps=(
            MeasureStep(StateTuple(machine, "CRASH"), TotalDuration("T")),
            MeasureStep(StateTuple(machine, "RESTART_SM"), indicator, value_positive()),
        ),
    )


class TestElectionSpecifications:
    def test_state_machine_matches_paper_structure(self):
        spec = election_state_machine_spec("black", ("black", "yellow", "green"))
        assert spec.notify_list("INIT") == ("yellow", "green")
        assert spec.notify_list("CRASH") == ("yellow", "green")
        assert spec.notify_list("LEAD") == ()
        assert spec.transition("FOLLOW", "LEADER_CRASH") == "ELECT"
        assert spec.transition("ELECT", "LEADER") == "LEAD"

    def test_fault_helpers_match_section_5_4(self):
        assert leader_fault("black").to_text() == "bfault1 (black:LEAD) always"
        assert correlated_follower_fault("black", "green").to_text() == (
            "gfault2 ((black:CRASH) & ((green:FOLLOW) | (green:ELECT))) once"
        )
        assert uncorrelated_follower_fault("green").to_text() == (
            "gfault3 ((green:FOLLOW) | (green:ELECT)) once"
        )


class TestElectionEndToEnd:
    def run_study1(self, experiments=4, success_probability=1.0, seed=21):
        study = build_election_study(
            "study1",
            {"black": (leader_fault("black"),)},
            experiments=experiments,
            parameters_by_machine=election_parameters(favored="black"),
            restart_policy=RestartPolicy(
                enabled=True, delay=0.04, max_restarts=1, restart_host="next",
                success_probability=success_probability,
            ),
            experiment_timeout=3.0,
            seed=seed,
        )
        return study, run_single_study(study)

    def test_leader_elected_and_fault_injected(self):
        _, result = self.run_study1(experiments=2)
        for experiment in result.experiments:
            assert experiment.completed
            black = experiment.local_timelines["black"]
            states = [record.new_state for record in black.state_changes()]
            assert "LEAD" in states
            assert [record.fault for record in black.fault_injections()] == ["bfault1"] or (
                len(black.fault_injections()) >= 1
            )

    def test_followers_detect_leader_crash(self):
        _, result = self.run_study1(experiments=2)
        experiment = result.experiments[0]
        follower_states = [
            record.new_state
            for record in experiment.local_timelines["green"].state_changes()
        ]
        # After the leader crashes the follower re-enters ELECT.
        assert follower_states.count("ELECT") >= 2

    def test_analysis_accepts_most_experiments(self):
        _, result = self.run_study1(experiments=4)
        analysis = analyze_study(result)
        assert len(analysis.accepted()) >= 3
        assert correct_injection_fraction(analysis.experiments) > 0.7

    def test_coverage_measure_estimates_restart_probability(self):
        _, result = self.run_study1(experiments=10, success_probability=1.0)
        analysis = analyze_study(result)
        values = [v for v in analysis.measure_values(coverage_measure()) if v is not None]
        assert values, "expected surviving experiments"
        assert sum(values) / len(values) == pytest.approx(1.0)

    def test_stratified_weighted_coverage_across_studies(self):
        # Two small studies with different (known) recovery probabilities.
        results = {}
        for name, probability, seed in (("s1", 1.0, 3), ("s2", 0.0, 4)):
            study = build_election_study(
                name,
                {"black": (leader_fault("black"),)},
                experiments=4,
                parameters_by_machine=election_parameters(favored="black"),
                restart_policy=RestartPolicy(
                    enabled=(probability > 0), delay=0.04, max_restarts=1,
                    success_probability=probability,
                ),
                experiment_timeout=3.0,
                seed=seed,
            )
            analysis = analyze_study(run_single_study(study))
            results[name] = analysis.measure_values(coverage_measure())
        weighted = StratifiedWeightedMeasure("coverage", {"s1": 3.0, "s2": 1.0})
        estimate = weighted.estimate(results)
        assert estimate.value == pytest.approx(0.75, abs=0.15)
        pooled = SimpleSamplingMeasure("coverage-pooled").estimate(results)
        assert 0.0 <= pooled.value <= 1.0


class TestReplicationEndToEnd:
    def test_replication_study_runs_and_faults_target_global_state(self):
        study = build_replication_study("rep", experiments=3, seed=5)
        result = run_single_study(study)
        injected = 0
        for experiment in result.experiments:
            assert experiment.completed
            primary = experiment.local_timelines["replica1"]
            states = [record.new_state for record in primary.state_changes()]
            assert states[0] == "INIT"
            assert "PRIMARY" in states
            injected += len(primary.fault_injections())
            backup_states = [
                record.new_state
                for record in experiment.local_timelines["replica2"].state_changes()
            ]
            assert "SYNC" in backup_states
        assert injected >= 1

    def test_backup_takes_over_after_primary_crash(self):
        parameters = ReplicationParameters(run_duration=0.8, primary="replica1")
        study = build_replication_study("rep", experiments=2, parameters=parameters, seed=9)
        result = run_single_study(study)
        took_over = 0
        for experiment in result.experiments:
            primary_timeline = experiment.local_timelines["replica1"]
            if primary_timeline.final_state() != "CRASH":
                continue
            backup_states = [
                record.new_state
                for record in experiment.local_timelines["replica2"].state_changes()
            ]
            if "PRIMARY" in backup_states:
                took_over += 1
        assert took_over >= 1

    def test_spec_and_fault_helpers(self):
        spec = replication_state_machine_spec("replica1", ("replica1", "replica2"))
        assert spec.transition("BACKUP", "SYNC_START") == "SYNC"
        assert spec.notify_list("PRIMARY") == ("replica2",)
        fault = primary_during_sync_fault("replica1", "replica2")
        assert fault.evaluate({"replica1": "PRIMARY", "replica2": "SYNC"})
        assert not fault.evaluate({"replica1": "PRIMARY", "replica2": "BACKUP"})


class TestTogglePipeline:
    def test_longer_dwell_times_yield_more_correct_injections(self):
        fractions = {}
        for dwell in (0.002, 0.050):
            study = build_toggle_study(
                f"dwell-{dwell}", dwell_time=dwell, timeslice=0.010,
                cycles=6, experiments=2, seed=13,
            )
            analysis = analyze_study(run_single_study(study))
            fractions[dwell] = correct_injection_fraction(analysis.experiments)
        assert fractions[0.050] > fractions[0.002]
        assert fractions[0.050] > 0.6
