"""Tests of the columnar record codec: blocks, healing, codec transparency.

The columnar codec must be indistinguishable from the JSONL codec at every
observable level: a payload round-trips bit-exactly through a block, a
store written columnar resumes and re-analyzes bit-identically to one
written JSONL, and a reader handed a directory holding both codecs' files
merges them transparently.  The round-trip properties run twice, mirroring
``test_store``: against a deterministic seeded table (always), and against
hypothesis-generated payloads when hypothesis is installed.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.campaign import CampaignRunner
from repro.errors import StoreError, StoreIntegrityError
from repro.pipeline import run_and_analyze
from repro.store import (
    COLUMNAR_FORMAT_VERSION,
    READABLE_COLUMNAR_VERSIONS,
    CampaignStore,
    available_engines,
    block_roundtrips,
    decode_block,
    encode_block,
    result_to_dict,
    scan_blocks,
)
from repro.store.columnar import MAGIC_LINE

from test_store import build_campaign, campaign_measures_of, synthetic_result

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ModuleNotFoundError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False


def check_block_roundtrip(result) -> None:
    assert block_roundtrips(result)
    block = encode_block(result)
    header_line, _, rest = block.partition(b"\n")
    decoded = decode_block(json.loads(header_line), rest[:-1])
    # Canonical-dictionary equality is bit-exact float equality.
    assert result_to_dict(decoded) == result_to_dict(result)
    assert decoded.seed == result.seed
    for machine, timeline in result.local_timelines.items():
        other = decoded.local_timelines[machine]
        assert other.records == timeline.records
        assert other.faults == timeline.faults
        assert other.notes == timeline.notes
    assert decoded.sync_messages == result.sync_messages
    assert decoded.host_clock_parameters == result.host_clock_parameters


def file_of(*blocks: bytes) -> bytes:
    return MAGIC_LINE + b"".join(blocks)


# ---------------------------------------------------------------------------
# Block round trips
# ---------------------------------------------------------------------------


class TestColumnarBlocks:
    def test_seeded_roundtrips(self):
        for seed in range(40):
            check_block_roundtrip(synthetic_result(seed))

    def test_extreme_floats_roundtrip(self):
        # Raw IEEE-754 doubles in the tables, repr floats in the meta line:
        # both sides must preserve these bit patterns exactly.
        extremes = [
            1e-308,          # subnormal territory
            5e-324,          # smallest positive subnormal
            1e308,
            math.inf,
            -math.inf,
            -0.0,
            2.0**-52,
            0.1 + 0.2,
            math.pi,
        ]
        result = synthetic_result(1, extra_times=extremes)
        check_block_roundtrip(result)
        # -0.0 specifically: equality would not catch a sign-bit loss.
        decoded = decode_block(*split_block(encode_block(result)))
        times = [
            record.time
            for timeline in decoded.local_timelines.values()
            for record in timeline.records
        ]
        assert any(time == 0.0 and math.copysign(1.0, time) < 0 for time in times)

    def test_empty_tables_roundtrip(self):
        # A result can legitimately carry empty timelines (zero records)
        # and no sync messages; zero-row arrays must frame cleanly.
        result = synthetic_result(2)
        for timeline in result.local_timelines.values():
            timeline.records.clear()
        result.sync_messages.clear()
        check_block_roundtrip(result)

    def test_real_experiment_roundtrips(self):
        from repro.apps.toggle import build_toggle_study

        study = build_toggle_study(
            "rt", dwell_time=0.02, timeslice=0.002, cycles=3, experiments=1, seed=9
        )
        check_block_roundtrip(CampaignRunner.run_experiment_of(study, 0))

    def test_matches_jsonl_codec_bit_exactly(self):
        from repro.store import decode_record, encode_record

        for seed in range(10):
            result = synthetic_result(seed)
            via_jsonl = result_to_dict(decode_record(encode_record(result)))
            via_columnar = result_to_dict(decode_block(*split_block(encode_block(result))))
            assert via_jsonl == via_columnar

    def test_unknown_engine_rejected(self):
        with pytest.raises(StoreError, match="unknown columnar engine"):
            encode_block(synthetic_result(3), engine="csv")

    def test_arrow_engine_gated_when_pyarrow_missing(self):
        if "arrow" in available_engines():
            assert block_roundtrips(synthetic_result(3), engine="arrow")
        else:
            with pytest.raises(StoreError, match="pyarrow"):
                encode_block(synthetic_result(3), engine="arrow")

    def test_unknown_format_version_detected(self):
        block = encode_block(synthetic_result(4))
        header, payload = split_block(block)
        header["format"] = COLUMNAR_FORMAT_VERSION + 1
        assert header["format"] not in READABLE_COLUMNAR_VERSIONS
        with pytest.raises(StoreIntegrityError, match="columnar format"):
            decode_block(header, payload)

    def test_body_length_mismatch_detected(self):
        header, payload = split_block(encode_block(synthetic_result(5)))
        with pytest.raises(StoreIntegrityError):
            decode_block(header, payload + b"\x00" * 8)

    if HAVE_HYPOTHESIS:

        @given(
            seed=st.integers(min_value=0, max_value=2**32 - 1),
            extra_times=st.lists(
                st.floats(allow_nan=False, width=64), max_size=6
            ),
        )
        @settings(max_examples=60, deadline=None)
        def test_hypothesis_roundtrips(self, seed, extra_times):
            check_block_roundtrip(synthetic_result(seed, extra_times=extra_times))


def split_block(block: bytes) -> tuple[dict, bytes]:
    header_line, _, rest = block.partition(b"\n")
    return json.loads(header_line), rest[:-1]


# ---------------------------------------------------------------------------
# File scanning and torn-tail healing
# ---------------------------------------------------------------------------


class TestScanAndHeal:
    def test_scan_reads_every_block(self):
        blocks = [encode_block(synthetic_result(seed)) for seed in range(4)]
        scan = scan_blocks(file_of(*blocks))
        assert scan.valid == 4 and scan.corrupt == 0
        assert scan.valid_end == len(file_of(*blocks))

    def test_scan_refuses_foreign_files(self):
        # A writer must never "heal" (truncate) a file that is not a
        # columnar store in the first place.
        with pytest.raises(StoreIntegrityError, match="magic"):
            scan_blocks(b'{"payload": "this is a jsonl store"}\n')

    def test_torn_tail_ends_the_valid_prefix(self):
        intact = file_of(
            encode_block(synthetic_result(1)), encode_block(synthetic_result(2))
        )
        torn = intact + encode_block(synthetic_result(3))[:-17]
        scan = scan_blocks(torn)
        assert scan.valid == 2 and scan.corrupt == 1
        assert scan.valid_end == len(intact)

    def test_checksum_tamper_ends_the_valid_prefix(self):
        block = bytearray(encode_block(synthetic_result(1)))
        block[-30] ^= 0xFF  # flip a payload byte; header checksum now lies
        scan = scan_blocks(file_of(bytes(block)))
        assert scan.valid == 0 and scan.corrupt == 1
        assert scan.valid_end == len(MAGIC_LINE)

    def test_writer_heals_torn_tail_before_appending(self, tmp_path):
        store = CampaignStore(tmp_path / "c", codec="columnar")
        with store:
            store.append(synthetic_result(1))
        path = store.columnar_path("synthetic")
        intact = path.read_bytes()
        path.write_bytes(intact + encode_block(synthetic_result(2))[:-9])

        with store:
            store.append(synthetic_result(3))
        scan = scan_blocks(path.read_bytes())
        assert scan.valid == 2 and scan.corrupt == 0
        assert [r.seed for r in scan.results] == [
            synthetic_result(1).seed,
            synthetic_result(3).seed,
        ]


# ---------------------------------------------------------------------------
# Store-level codec transparency
# ---------------------------------------------------------------------------


class TestColumnarStore:
    def test_unknown_codec_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="unknown store codec"):
            CampaignStore(tmp_path / "c", codec="parquet")

    def test_store_backed_run_matches_plain_run(self, tmp_path):
        campaign = build_campaign()
        plain = run_and_analyze(campaign)
        store = CampaignStore(tmp_path / "c", codec="columnar")
        with store:
            stored = run_and_analyze(campaign, store=store)
        assert campaign_measures_of(stored) == campaign_measures_of(plain)
        # Re-analysis straight off the columnar files: still bit-identical.
        assert campaign_measures_of(store.load_analysis(campaign)) == (
            campaign_measures_of(plain)
        )

    def test_columnar_and_jsonl_stores_agree_record_for_record(self, tmp_path):
        campaign = build_campaign()
        jsonl = CampaignStore(tmp_path / "jsonl", codec="jsonl")
        columnar = CampaignStore(tmp_path / "col", codec="columnar")
        run_and_analyze(campaign, store=jsonl)
        with columnar:
            run_and_analyze(campaign, store=columnar)
        for study in campaign.studies:
            left = jsonl.load_study_records(study.name)
            right = columnar.load_study_records(study.name)
            assert sorted(left) == sorted(right)
            for index in left:
                assert result_to_dict(left[index]) == result_to_dict(right[index])

    def test_manifest_records_the_codec(self, tmp_path):
        store = CampaignStore(tmp_path / "c", codec="columnar")
        manifest = store.attach(build_campaign())
        assert manifest.codec == "columnar"
        assert store.read_manifest().codec == "columnar"
        # Default stores stamp (and old manifests imply) "jsonl".
        plain = CampaignStore(tmp_path / "d")
        assert plain.attach(build_campaign()).codec == "jsonl"
        data = json.loads(plain.manifest_path.read_text(encoding="utf-8"))
        del data["codec"]  # a manifest written before the key existed
        plain.manifest_path.write_text(json.dumps(data), encoding="utf-8")
        assert plain.read_manifest().codec == "jsonl"

    def test_jsonl_campaign_resumes_and_grows_columnar(self, tmp_path, monkeypatch):
        # The migration story: record a campaign as JSONL, then grow it
        # with a columnar writer.  Old records are reused (not re-run) and
        # the merged read is bit-identical to a plain run of the grown
        # campaign.
        small = build_campaign(experiments=2)
        run_and_analyze(small, store=CampaignStore(tmp_path / "c", codec="jsonl"))

        simulated: list[tuple[str, int]] = []
        original = CampaignRunner.run_experiment

        def counting(self, study, index):
            simulated.append((study.name, index))
            return original(self, study, index)

        monkeypatch.setattr(CampaignRunner, "run_experiment", counting)
        large = build_campaign(experiments=4)
        store = CampaignStore(tmp_path / "c", codec="columnar")
        with store:
            grown = run_and_analyze(large, store=store)
        assert sorted(simulated) == [
            ("alpha", 2), ("alpha", 3), ("beta", 2), ("beta", 3),
        ]
        assert campaign_measures_of(grown) == campaign_measures_of(
            run_and_analyze(large)
        )
        # Both codecs' files now exist side by side and verify() sees all
        # records across them.
        assert store.records_path("alpha").is_file()
        assert store.columnar_path("alpha").is_file()
        assert all(report.valid == 4 for report in store.verify().values())

    def test_columnar_record_supersedes_jsonl_for_same_index(self, tmp_path):
        from dataclasses import replace

        result = synthetic_result(6)
        jsonl = CampaignStore(tmp_path / "c", codec="jsonl")
        jsonl.append(result)
        rewritten = replace(result, duration=result.duration + 1.0)
        store = CampaignStore(tmp_path / "c", codec="columnar")
        with store:
            store.append(rewritten)
        loaded = store.load_study_records("synthetic")
        assert loaded[result.index].duration == rewritten.duration

    def test_interrupted_columnar_campaign_resumes_bit_identical(
        self, tmp_path, monkeypatch
    ):
        from test_store import TestResumeRoundTrip

        campaign = build_campaign(experiments=3)
        baseline = campaign_measures_of(run_and_analyze(campaign))
        store = CampaignStore(tmp_path / "c", codec="columnar")
        TestResumeRoundTrip().interrupt_after(store, campaign, count=3)
        store.close()  # the kill dropped the engine's reference mid-flight
        assert sum(report.valid for report in store.verify().values()) == 3

        simulated: list[tuple[str, int]] = []
        original = CampaignRunner.run_experiment

        def counting(self, study, index):
            simulated.append((study.name, index))
            return original(self, study, index)

        monkeypatch.setattr(CampaignRunner, "run_experiment", counting)
        with store:
            resumed = run_and_analyze(campaign, store=store)
        assert len(simulated) == 3
        assert campaign_measures_of(resumed) == baseline
