"""Tests of the fault-tolerant distributed execution backend (repro.dist).

Four layers:

* the wire protocol's framing and its torn-connection semantics;
* the shard planner's partition property — every pending experiment in
  exactly one shard — for arbitrary campaign shapes (seeded table always,
  hypothesis when installed);
* the supervision primitives (retry policy, heartbeat monitor) driven by
  a ``FakeClock`` in zero real time;
* the backend end to end: bit-identical to serial, streaming into a
  campaign store, resuming a killed campaign, and degrading gracefully
  when workers are missing.  (Fault *injection* — SIGKILL, dropped
  heartbeats, duplicated completions — lives in ``tests/chaos/``.)
"""

from __future__ import annotations

import socket
import threading
from dataclasses import replace

import pytest

from repro.apps.toggle import build_toggle_study
from repro.core.campaign import CampaignConfig
from repro.core.execution import (
    DISTRIBUTED,
    ExecutionConfig,
    available_backends,
    build_executor,
)
from repro.dist import (
    CampaignCoordinator,
    DistributedExecutor,
    FakeClock,
    HeartbeatMonitor,
    MessageChannel,
    RetryPolicy,
    ShardSpec,
    decode_frames,
    encode_frame,
    plan_shards,
)
from repro.dist.supervision import supervision_stream
from repro.dist.worker import WorkerOptions
from repro.errors import (
    NoWorkersError,
    ProtocolError,
    RuntimeConfigurationError,
)
from repro.measures import (
    MeasureStep,
    SimpleSamplingMeasure,
    StateTuple,
    StudyMeasure,
    TotalDuration,
    estimate_campaign_measure,
)
from repro.pipeline import run_and_analyze
from repro.sim.rng import RandomStreams
from repro.store import CampaignStore

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ModuleNotFoundError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

needs_fork = pytest.mark.skipif(
    DISTRIBUTED not in available_backends(),
    reason="distributed backend needs the fork start method",
)


def build_campaign(experiments: int = 4) -> CampaignConfig:
    study_a = build_toggle_study(
        "alpha", dwell_time=0.02, timeslice=0.002, cycles=3,
        experiments=experiments, seed=11,
    )
    study_b = build_toggle_study(
        "beta", dwell_time=0.03, timeslice=0.002, cycles=3,
        experiments=experiments, seed=22,
    )
    return CampaignConfig(name="dist-test", studies=[study_a, study_b])


DRIVER_MEASURE = StudyMeasure(
    name="driver-active",
    steps=(MeasureStep(StateTuple("driver", "ACTIVE"), TotalDuration("T")),),
)


def campaign_measures_of(analysis) -> dict:
    """Every downstream quantity, in exactly comparable (bit-exact) form."""
    study_measures = {name: DRIVER_MEASURE for name in analysis.studies}
    estimate = estimate_campaign_measure(
        SimpleSamplingMeasure("driver-active"), analysis, study_measures
    )
    return {
        "values": analysis.measure_values(study_measures),
        "acceptance": analysis.acceptance_summary(),
        "seeds": {
            name: [e.result.seed for e in study.experiments]
            for name, study in analysis.studies.items()
        },
        "estimate": estimate.to_dict(),
    }


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocolFraming:
    def test_frame_roundtrip(self):
        messages = [
            {"type": "hello", "worker": 0},
            {"type": "completion", "worker": 1, "study": 0, "index": 7, "record": "x" * 100},
            {"type": "shard-done", "worker": 1, "shard": 3},
        ]
        data = b"".join(encode_frame(message) for message in messages)
        assert list(decode_frames(data)) == messages

    def test_truncated_frame_raises(self):
        data = encode_frame({"type": "hello", "worker": 0})
        with pytest.raises(ProtocolError, match="truncated"):
            list(decode_frames(data[:-3]))

    def test_untyped_message_rejected(self):
        import json
        import struct

        payload = json.dumps(["not", "a", "message"]).encode()
        data = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="typed message"):
            list(decode_frames(data))

    def test_message_channel_roundtrip_and_eof(self):
        left, right = socket.socketpair()
        sender, receiver = MessageChannel(left), MessageChannel(right)
        sender.send({"type": "heartbeat", "worker": 2})
        sender.send({"type": "shard-done", "worker": 2, "shard": 0})
        assert receiver.recv() == {"type": "heartbeat", "worker": 2}
        assert receiver.recv() == {"type": "shard-done", "worker": 2, "shard": 0}
        sender.close()
        assert receiver.recv() is None  # clean EOF between frames
        receiver.close()

    def test_message_channel_torn_frame_raises(self):
        left, right = socket.socketpair()
        receiver = MessageChannel(right)
        frame = encode_frame({"type": "hello", "worker": 0})
        left.sendall(frame[: len(frame) - 2])  # die mid-frame, like SIGKILL
        left.close()
        with pytest.raises(ProtocolError, match="connection lost"):
            receiver.recv()
        receiver.close()

    def test_channel_sends_are_thread_safe(self):
        # The heartbeat thread and the experiment loop share one channel;
        # interleaved sends must never interleave frames.
        left, right = socket.socketpair()
        sender, receiver = MessageChannel(left), MessageChannel(right)
        per_thread = 50

        def blast(worker_id: int) -> None:
            for index in range(per_thread):
                sender.send({"type": "completion", "worker": worker_id,
                             "study": 0, "index": index, "record": "r" * 512})

        threads = [threading.Thread(target=blast, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        received = [receiver.recv() for _ in range(4 * per_thread)]
        for thread in threads:
            thread.join()
        assert all(message["type"] == "completion" for message in received)
        assert len(received) == 4 * per_thread
        sender.close()
        receiver.close()


# ---------------------------------------------------------------------------
# Shard planning: the partition property
# ---------------------------------------------------------------------------


def check_partition(tasks: list[tuple[int, int]], shard_size: int) -> None:
    """Every task in exactly one shard; no shard oversized or mixed."""
    shards = plan_shards(tasks, shard_size)
    covered: list[tuple[int, int]] = []
    for shard in shards:
        assert 1 <= shard.size <= shard_size
        covered.extend(shard.tasks())
    assert sorted(covered) == sorted(tasks)
    assert len(covered) == len(set(covered))
    assert [shard.shard_id for shard in shards] == list(range(len(shards)))


class TestShardPlanner:
    #: (study sizes, shard size) shapes covering the interesting regimes.
    SEEDED_SHAPES = (
        ((1,), 1),
        ((7,), 3),
        ((8,), 8),
        ((5, 5), 2),
        ((3, 1, 9), 4),
        ((100,), 7),
        ((2, 2, 2, 2), 1),
    )

    @pytest.mark.parametrize("sizes,shard_size", SEEDED_SHAPES)
    def test_partition_property_seeded(self, sizes, shard_size):
        tasks = [
            (study_index, experiment_index)
            for study_index, size in enumerate(sizes)
            for experiment_index in range(size)
        ]
        check_partition(tasks, shard_size)

    def test_partition_of_gappy_resume_sets(self):
        # Resume skips cached experiments, so the pending set has holes;
        # shards must never span a hole (they are seed-range slices).
        tasks = [(0, i) for i in (0, 1, 2, 5, 6, 9)] + [(1, i) for i in (4, 5)]
        check_partition(tasks, 2)
        shards = plan_shards(tasks, 10)
        spans = [(s.study_index, s.start, s.stop) for s in shards]
        assert spans == [(0, 0, 3), (0, 5, 7), (0, 9, 10), (1, 4, 6)]

    def test_task_order_is_irrelevant(self):
        tasks = [(0, i) for i in range(9)] + [(1, i) for i in range(4)]
        shuffled = list(reversed(tasks))
        assert plan_shards(tasks, 4) == plan_shards(shuffled, 4)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            plan_shards([(0, 1), (0, 1)], 2)

    def test_empty_shard_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ShardSpec(shard_id=0, study_index=0, start=3, stop=3)

    def test_nonpositive_shard_size_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            plan_shards([(0, 0)], 0)

    if HAVE_HYPOTHESIS:

        @given(
            sizes=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=5),
            shard_size=st.integers(min_value=1, max_value=50),
            drop_seed=st.integers(min_value=0, max_value=2**31),
        )
        @settings(max_examples=60, deadline=None)
        def test_partition_property_hypothesis(self, sizes, shard_size, drop_seed):
            # Arbitrary study sizes with pseudo-random holes (a resume set).
            tasks = []
            for study_index, size in enumerate(sizes):
                for experiment_index in range(size):
                    gate = RandomStreams(drop_seed).derive(
                        f"drop:{study_index}:{experiment_index}"
                    )
                    if gate % 4:  # keep ~75%
                        tasks.append((study_index, experiment_index))
            if tasks:
                check_partition(tasks, shard_size)
            else:
                assert plan_shards(tasks, shard_size) == []


# ---------------------------------------------------------------------------
# Supervision primitives (no real time: FakeClock throughout)
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_exhaustion_boundary(self):
        policy = RetryPolicy(max_retries=2)
        assert not policy.exhausted(1)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert RetryPolicy(max_retries=0).exhausted(1)

    def test_delay_grows_exponentially_within_jitter(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=1.0, jitter=0.5)
        rng = RandomStreams(0).stream("test-jitter")
        for attempt, base in ((1, 0.1), (2, 0.2), (3, 0.4), (4, 0.8), (5, 1.0), (6, 1.0)):
            delay = policy.delay(attempt, rng)
            assert base <= delay <= base * 1.5

    def test_delay_attempts_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay(0, RandomStreams(0).stream("x"))

    def test_from_execution_carries_the_knobs(self):
        config = ExecutionConfig(max_retries=5, retry_backoff_base_s=0.5)
        policy = RetryPolicy.from_execution(config)
        assert policy.max_retries == 5
        assert policy.backoff_base_s == 0.5

    def test_supervision_stream_is_reproducible_and_namespaced(self):
        campaign = build_campaign(experiments=1)
        first = supervision_stream(campaign).random()
        again = supervision_stream(campaign).random()
        assert first == again  # pure function of the configuration
        # ...and disjoint from the experiment seed derivation.
        experiment_rng = RandomStreams(campaign.studies[0].seed)
        assert supervision_stream(campaign).random() != experiment_rng.stream(
            "dist-supervision"
        ).random()


class TestHeartbeatMonitor:
    def test_expiry_is_clock_driven(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(timeout_s=1.0, clock=clock)
        monitor.beat(0)
        monitor.beat(1)
        assert monitor.expired() == []
        clock.advance(0.9)
        monitor.beat(1)  # worker 1 keeps beating
        clock.advance(0.2)  # worker 0 now silent for 1.1s
        assert monitor.expired() == [0]
        assert monitor.silence(0) == pytest.approx(1.1)

    def test_forget_stops_watching(self):
        clock = FakeClock()
        monitor = HeartbeatMonitor(timeout_s=0.5, clock=clock)
        monitor.beat(3)
        monitor.forget(3)
        clock.advance(10.0)
        assert monitor.expired() == []
        assert monitor.watched() == ()

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            HeartbeatMonitor(timeout_s=0, clock=FakeClock())


# ---------------------------------------------------------------------------
# ExecutionConfig knobs
# ---------------------------------------------------------------------------


class TestExecutionConfigKnobs:
    def test_distributed_backend_is_registered(self):
        if "fork" in __import__("multiprocessing").get_all_start_methods():
            assert DISTRIBUTED in available_backends()

    def test_distributed_constructor(self):
        config = ExecutionConfig.distributed(workers=4, chunk_size=3)
        assert config.backend == DISTRIBUTED
        assert config.workers == 4
        assert isinstance(build_executor(config), DistributedExecutor)

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"max_retries": -1}, "max_retries"),
            ({"retry_backoff_base_s": 0.0}, "backoff"),
            ({"heartbeat_interval_s": 0.0}, "interval"),
            ({"heartbeat_timeout_s": 0.1, "heartbeat_interval_s": 0.5}, "exceed"),
        ],
    )
    def test_retry_knob_validation(self, kwargs, match):
        with pytest.raises(RuntimeConfigurationError, match=match):
            ExecutionConfig(**kwargs)

    def test_knobs_participate_in_config_identity(self):
        assert ExecutionConfig(max_retries=1) != ExecutionConfig(max_retries=2)


# ---------------------------------------------------------------------------
# The backend end to end
# ---------------------------------------------------------------------------


@needs_fork
class TestDistributedEquivalence:
    def test_bit_identical_to_serial(self):
        campaign = build_campaign(experiments=4)
        serial = run_and_analyze(campaign, ExecutionConfig.serial())
        dist = run_and_analyze(
            campaign, ExecutionConfig.distributed(workers=3, chunk_size=2)
        )
        assert campaign_measures_of(serial) == campaign_measures_of(dist)

    def test_single_worker_single_shard(self):
        campaign = build_campaign(experiments=2)
        serial = run_and_analyze(campaign, ExecutionConfig.serial())
        dist = run_and_analyze(
            campaign, ExecutionConfig.distributed(workers=1, chunk_size=50)
        )
        assert campaign_measures_of(serial) == campaign_measures_of(dist)

    def test_store_streaming_matches_serial_store(self, tmp_path):
        campaign = build_campaign(experiments=3)
        serial = run_and_analyze(
            campaign, ExecutionConfig.serial(), store=CampaignStore(tmp_path / "s")
        )
        dist = run_and_analyze(
            campaign,
            ExecutionConfig.distributed(workers=2, chunk_size=2),
            store=CampaignStore(tmp_path / "d"),
        )
        assert campaign_measures_of(serial) == campaign_measures_of(dist)
        serial_store = CampaignStore(tmp_path / "s")
        dist_store = CampaignStore(tmp_path / "d")
        assert (
            serial_store.content_fingerprint() == dist_store.content_fingerprint()
        )
        reports = dist_store.verify()
        assert all(report.valid == 3 and report.corrupt == 0 for report in reports.values())

    def test_killed_campaign_heals_from_store(self, tmp_path):
        campaign = build_campaign(experiments=4)
        baseline = campaign_measures_of(
            run_and_analyze(
                campaign, ExecutionConfig.serial(), store=CampaignStore(tmp_path / "s")
            )
        )

        class KilledMidway(RuntimeError):
            pass

        completed = 0

        def die_after_three(name: str, done: int, total: int) -> None:
            nonlocal completed
            completed += 1
            if completed >= 3:
                raise KilledMidway()

        with pytest.raises(KilledMidway):
            run_and_analyze(
                campaign,
                ExecutionConfig.distributed(
                    workers=2, chunk_size=2, progress=die_after_three
                ),
                store=CampaignStore(tmp_path / "d"),
            )
        # The first three completions reached the store before the kill...
        persisted = sum(
            report.valid for report in CampaignStore(tmp_path / "d").verify().values()
        )
        assert persisted >= 3
        # ...and a rerun with the same store heals to the serial baseline.
        resumed = run_and_analyze(
            campaign,
            ExecutionConfig.distributed(workers=2, chunk_size=2),
            store=CampaignStore(tmp_path / "d"),
        )
        assert campaign_measures_of(resumed) == baseline
        assert (
            CampaignStore(tmp_path / "d").content_fingerprint()
            == CampaignStore(tmp_path / "s").content_fingerprint()
        )

    def test_progress_streams_completions(self):
        campaign = build_campaign(experiments=3)
        seen: list[tuple[str, int, int]] = []
        run_and_analyze(
            campaign,
            ExecutionConfig.distributed(
                workers=2, chunk_size=1, progress=lambda *event: seen.append(event)
            ),
        )
        assert len(seen) == 6
        assert {name for name, _, _ in seen} == {"alpha", "beta"}
        for name, done, total in seen:
            assert 1 <= done <= total == 3


@needs_fork
class TestGracefulDegradation:
    def test_zero_workers_falls_back_to_serial(self):
        # Workers aimed at a dead port never connect; after the connect
        # window the coordinator gives up and the backend runs in-process.
        class DeafCoordinator(CampaignCoordinator):
            def worker_options(self, worker_id: int) -> WorkerOptions:
                options = super().worker_options(worker_id)
                return replace(options, port=_unused_port())

        class FallbackExecutor(DistributedExecutor):
            coordinator_class = DeafCoordinator
            connect_timeout_s = 0.5

        campaign = build_campaign(experiments=2)
        serial = campaign_measures_of(run_and_analyze(campaign, ExecutionConfig.serial()))
        executor = FallbackExecutor(ExecutionConfig.distributed(workers=2))
        with pytest.warns(UserWarning, match="falling back"):
            analysis = executor.run_and_analyze(campaign)
        assert campaign_measures_of(analysis) == serial

    def test_missing_workers_degrade_with_warning(self):
        # One worker of three aims at a dead port: the campaign completes
        # on the surviving fleet, warning about the degradation.  The live
        # workers stall briefly after hello so the census (0.3s) fires
        # while the campaign is still in flight.
        class HalfDeafCoordinator(CampaignCoordinator):
            def worker_options(self, worker_id: int) -> WorkerOptions:
                options = super().worker_options(worker_id)
                if worker_id == 0:
                    return replace(options, port=_unused_port())
                return replace(options, stall_before_work_s=0.8)

        class DegradedExecutor(DistributedExecutor):
            coordinator_class = HalfDeafCoordinator
            connect_timeout_s = 0.3

        campaign = build_campaign(experiments=3)
        serial = campaign_measures_of(run_and_analyze(campaign, ExecutionConfig.serial()))
        executor = DegradedExecutor(
            ExecutionConfig.distributed(workers=3, chunk_size=1)
        )
        with pytest.warns(UserWarning, match="proceeding degraded"):
            analysis = executor.run_and_analyze(campaign)
        assert campaign_measures_of(analysis) == serial

    def test_unknown_backend_still_rejected(self):
        with pytest.raises(RuntimeConfigurationError, match="unknown execution backend"):
            ExecutionConfig(backend="cluster")


def _unused_port() -> int:
    """A port with nothing listening on it (closed immediately)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
