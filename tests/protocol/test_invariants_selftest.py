"""Proof that every invariant checker can actually fail.

Each protocol app carries one deliberate-breakage knob, never set by the
registry scenarios, that removes exactly the mechanism its safety
property rests on:

* Raft — ``unsafe_grant_votes=True`` grants every vote request (no
  one-vote-per-term, no log up-to-dateness) and lets deposed leaders
  accept same-term appends; identical fixed election timeouts make the
  replicas campaign simultaneously, so several win the same term and
  their logs commit divergent entries.
* Quorum — ``write_quorum=1, read_quorum=1, send_to_all=False``:
  non-intersecting quorums sprayed round-robin, so reads routinely miss
  the replica holding the last commit.
* SWIM — an ``ack_timeout`` below the network round trip plus a tiny
  ``suspicion_timeout``: every ping "times out", suspicions mature into
  confirm verdicts, and nobody ever crashed.
* DFS — ``corrupt_store=True`` on one datanode: it mangles the content
  it stores while acknowledging as if the store were faithful.

A checker that cannot flag these configurations would be decorative; a
checker that flags the *correct* configurations would be noise.  Both
directions are pinned here.
"""

from __future__ import annotations

from invariants import (
    check_dfs_store_consistency,
    check_quorum_reads,
    check_raft_election_safety,
    check_raft_log_matching,
    check_swim_confirms,
)
from repro.apps.dfsmaster import DfsParameters, build_dfs_study
from repro.apps.quorum import QuorumParameters, build_quorum_study
from repro.apps.raft import RAFT_MACHINES, RaftParameters, build_raft_study
from repro.apps.swim import SWIM_MACHINES, SwimParameters, build_swim_study
from repro.core.campaign import CampaignConfig
from repro.core.execution import ExecutionConfig
from repro.pipeline import run_and_analyze


def run_study(study):
    campaign = CampaignConfig(name=f"selftest-{study.name}", studies=[study])
    analysis = run_and_analyze(
        campaign, execution=ExecutionConfig(keep_raw_results=True)
    )
    return [
        experiment.result.local_timelines
        for experiment in analysis.studies[study.name].experiments
    ]


def total_violations(checker, experiments):
    return [violation for timelines in experiments for violation in checker(timelines)]


def test_unsafe_raft_violates_election_safety():
    """Simultaneous candidacies + promiscuous votes -> several same-term leaders."""
    broken = {
        machine: RaftParameters(
            election_timeout_min=0.050,
            election_timeout_max=0.050,  # identical fixed timers: everyone
            unsafe_grant_votes=True,  # campaigns at once, everyone wins
        )
        for machine in RAFT_MACHINES
    }
    experiments = run_study(
        build_raft_study(
            "raft-unsafe", parameters_by_machine=broken, experiments=3, seed=5
        )
    )
    safety = total_violations(check_raft_election_safety, experiments)
    assert safety, "unsafe vote granting never produced a dual-leader term"
    assert any("election safety" in violation for violation in safety)
    # Divergent leaders append divergent entries at the same indices.
    matching = total_violations(check_raft_log_matching, experiments)
    assert matching, "dual leaders never committed divergent log entries"


def test_sub_intersecting_quorums_produce_stale_reads():
    broken = QuorumParameters(write_quorum=1, read_quorum=1, send_to_all=False)
    experiments = run_study(
        build_quorum_study(
            "quorum-broken", parameters=broken, experiments=3, seed=5
        )
    )
    violations = total_violations(check_quorum_reads, experiments)
    assert violations, "W=1/R=1 round-robin quorums never produced a stale read"
    assert any("stale read" in violation for violation in violations)


def test_impatient_swim_confirms_live_members_dead():
    broken = {
        machine: SwimParameters(
            ack_timeout=0.001,  # below the network round trip: every
            suspicion_timeout=0.010,  # ping "fails", every suspicion matures
        )
        for machine in SWIM_MACHINES
    }
    experiments = run_study(
        build_swim_study(
            "swim-impatient", parameters_by_machine=broken, experiments=3, seed=5
        )
    )
    violations = total_violations(check_swim_confirms, experiments)
    assert violations, "sub-RTT ack timeouts never produced a false confirm"
    assert any("never crashed" in violation for violation in violations)


def test_corrupting_datanode_breaks_store_consistency():
    experiments = run_study(
        build_dfs_study(
            "dfs-bitrot",
            parameters_by_machine={"d1": DfsParameters(corrupt_store=True)},
            experiments=3,
            seed=5,
        )
    )
    violations = total_violations(check_dfs_store_consistency, experiments)
    assert violations, "a corrupting datanode never tripped the consistency check"
    assert any("bitrot" in violation for violation in violations)


def test_correct_configurations_stay_clean():
    """The same checkers stay silent on the default (correct) parameters."""
    clean = {
        check_raft_election_safety: build_raft_study(
            "raft-clean", experiments=2, seed=5
        ),
        check_quorum_reads: build_quorum_study(
            "quorum-clean", experiments=2, seed=5
        ),
        check_swim_confirms: build_swim_study(
            "swim-clean", experiments=2, seed=5
        ),
        check_dfs_store_consistency: build_dfs_study(
            "dfs-clean", experiments=2, seed=5
        ),
    }
    for checker, study in clean.items():
        violations = total_violations(checker, run_study(study))
        assert not violations, f"{checker.__name__} flagged a correct run: {violations}"
