"""Machine-checkable protocol invariants, replayed from stored timelines.

Each checker takes one experiment's local timelines (the mapping
``machine nickname -> LocalTimeline`` kept by
``ExecutionConfig(keep_raw_results=True)`` or loaded back from a campaign
store) and returns a list of human-readable violation strings — empty
when the safety property held.  The checkers consume only recorded data:
state-change records, fault-injection records, and the structured
``@kind key=value`` protocol notes of :mod:`repro.apps.protocol_notes`.
No simulator access, no application internals — an archived campaign is
enough to re-audit years later.

The properties:

* **Raft election safety** — at most one replica wins any given term
  (``@raft-leader`` notes).
* **Raft committed-prefix agreement** — two replicas that both committed
  log index ``i`` committed the same ``(term, command)`` there
  (``@raft-commit`` notes).
* **Quorum read intersection** — with ``W + R > N`` a read never returns
  a version older than the last commit the client observed
  (``@quorum-read`` notes carry both).
* **SWIM confirmed-dead-really-crashed** — every ``@swim-confirm``
  verdict names a member whose own timeline records a real crash.
  (Deliberately *not* applied to the partition scenario, whose measure is
  exactly the rate at which this property fails.)
* **DFS store consistency** — every stored copy of a ``(chunk, version)``
  pair carries identical content (``@dfs-store`` notes).
* **DFS commit quorum** — every ``@dfs-commit`` names ``replication``
  distinct datanodes, each of which really stored the chunk at (at
  least) the committed version before anything could acknowledge.

``SCENARIO_INVARIANTS`` maps every protocol scenario of the default
registry to the checkers that must hold for it;
:func:`violations_for_experiment` and :func:`assert_invariants` are the
entry points the test modules share.
"""

from __future__ import annotations

from repro.apps.protocol_notes import ProtocolNote, parse_protocol_note

# ---------------------------------------------------------------------------
# Timeline access helpers
# ---------------------------------------------------------------------------


def collect_notes(timelines, kind: str) -> list[tuple[str, ProtocolNote]]:
    """All ``(machine, note)`` pairs of one structured-note kind."""
    found: list[tuple[str, ProtocolNote]] = []
    for machine in sorted(timelines):
        for text in timelines[machine].notes:
            note = parse_protocol_note(text)
            if note is not None and note.kind == kind:
                found.append((machine, note))
    return found


def crashed_machines(timelines) -> set[str]:
    """Machines whose own timeline records an entry into ``CRASH``."""
    crashed: set[str] = set()
    for machine in sorted(timelines):
        for record in timelines[machine].state_changes():
            if record.new_state == "CRASH":
                crashed.add(machine)
    return crashed


# ---------------------------------------------------------------------------
# Raft
# ---------------------------------------------------------------------------


def check_raft_election_safety(timelines) -> list[str]:
    """At most one distinct replica ever announces leadership of a term."""
    leaders_by_term: dict[int, set[str]] = {}
    for _, note in collect_notes(timelines, "raft-leader"):
        term = int(note["term"])
        leaders_by_term.setdefault(term, set()).add(note["node"])
    return [
        f"election safety: term {term} has {len(nodes)} leaders "
        f"({', '.join(sorted(nodes))})"
        for term, nodes in sorted(leaders_by_term.items())
        if len(nodes) > 1
    ]


def check_raft_log_matching(timelines) -> list[str]:
    """Replicas that committed the same index committed the same entry."""
    entries_by_index: dict[int, set[tuple[str, str]]] = {}
    for _, note in collect_notes(timelines, "raft-commit"):
        index = int(note["index"])
        entries_by_index.setdefault(index, set()).add((note["term"], note["cmd"]))
    return [
        f"log matching: index {index} committed as {sorted(entries)}"
        for index, entries in sorted(entries_by_index.items())
        if len(entries) > 1
    ]


# ---------------------------------------------------------------------------
# Quorum register
# ---------------------------------------------------------------------------


def check_quorum_reads(timelines) -> list[str]:
    """A read never observes a version older than the last commit."""
    return [
        f"stale read on {machine}: got version {note['got']} after "
        f"commit {note['committed']}"
        for machine, note in collect_notes(timelines, "quorum-read")
        if int(note["got"]) < int(note["committed"])
    ]


# ---------------------------------------------------------------------------
# SWIM failure detector
# ---------------------------------------------------------------------------


def check_swim_confirms(timelines) -> list[str]:
    """Every confirm verdict names a member that really crashed."""
    crashed = crashed_machines(timelines)
    return [
        f"false confirm: {note['by']} declared {note['target']} dead, "
        f"but it never crashed"
        for _, note in collect_notes(timelines, "swim-confirm")
        if note["target"] not in crashed
    ]


# ---------------------------------------------------------------------------
# DFS master/replica
# ---------------------------------------------------------------------------


def check_dfs_store_consistency(timelines) -> list[str]:
    """Every stored copy of a ``(chunk, version)`` has the same content."""
    contents: dict[tuple[str, int], set[str]] = {}
    for _, note in collect_notes(timelines, "dfs-store"):
        key = (note["chunk"], int(note["version"]))
        contents.setdefault(key, set()).add(note["content"])
    return [
        f"store divergence: {chunk} v{version} stored as {sorted(variants)}"
        for (chunk, version), variants in sorted(contents.items())
        if len(variants) > 1
    ]


def check_dfs_commit_quorum(timelines, replication: int = 2) -> list[str]:
    """Commits name ``replication`` distinct datanodes that really stored.

    The acknowledgement path guarantees a store note precedes every ack,
    so a commit whose replica never recorded storing the chunk at (at
    least) the committed version means the master counted an ack that
    had no durable store behind it.
    """
    stored: dict[tuple[str, str], int] = {}
    for machine, note in collect_notes(timelines, "dfs-store"):
        key = (note["node"], note["chunk"])
        stored[key] = max(stored.get(key, -1), int(note["version"]))
    violations: list[str] = []
    for _, note in collect_notes(timelines, "dfs-commit"):
        chunk, version = note["chunk"], int(note["version"])
        replicas = tuple(note["replicas"].split(","))
        if len(set(replicas)) != replication:
            violations.append(
                f"commit quorum: {chunk} v{version} committed on "
                f"{len(set(replicas))} replicas, expected {replication}"
            )
        for replica in replicas:
            if stored.get((replica, chunk), -1) < version:
                violations.append(
                    f"commit quorum: {chunk} v{version} committed on {replica}, "
                    f"which never stored it"
                )
    return violations


# ---------------------------------------------------------------------------
# The scenario -> invariants table
# ---------------------------------------------------------------------------

_RAFT = (check_raft_election_safety, check_raft_log_matching)
_QUORUM = (check_quorum_reads,)
_SWIM = (check_swim_confirms,)
_DFS = (check_dfs_store_consistency, check_dfs_commit_quorum)

#: Which checkers must hold for each protocol scenario of the default
#: registry.  ``swim-partition`` intentionally omits the confirmed-dead
#: checker: its false positives are the scenario's measure, not a bug.
SCENARIO_INVARIANTS: dict[str, tuple] = {
    "raft-election": _RAFT,
    "raft-election-uncorrelated": _RAFT,
    "raft-election-partition": _RAFT,
    "quorum-register": _QUORUM,
    "quorum-register-uncorrelated": _QUORUM,
    "quorum-register-partition": _QUORUM,
    "swim-detector": _SWIM,
    "swim-detector-uncorrelated": _SWIM,
    "swim-partition": (),
    "dfs-master": _DFS,
    "dfs-master-uncorrelated": _DFS,
    "dfs-master-partition": _DFS,
}

#: The note kind whose presence proves the scenario actually exercised its
#: protocol (guards against invariants passing vacuously on empty runs).
SCENARIO_ACTIVITY: dict[str, str] = {
    "raft-election": "raft-commit",
    "raft-election-uncorrelated": "raft-commit",
    "raft-election-partition": "raft-leader",
    "quorum-register": "quorum-read",
    "quorum-register-uncorrelated": "quorum-read",
    "quorum-register-partition": "quorum-read",
    "swim-detector": "swim-confirm",
    "swim-detector-uncorrelated": "swim-confirm",
    "swim-partition": "swim-confirm",
    "dfs-master": "dfs-commit",
    "dfs-master-uncorrelated": "dfs-commit",
    "dfs-master-partition": "dfs-commit",
}


def violations_for_experiment(scenario_name: str, timelines) -> list[str]:
    """Every invariant violation of one experiment's timelines."""
    violations: list[str] = []
    for checker in SCENARIO_INVARIANTS[scenario_name]:
        violations.extend(checker(timelines))
    return violations


def assert_invariants(scenario_name: str, analysis) -> None:
    """Assert every experiment of every study satisfies its invariants."""
    for study_name in analysis.studies:
        for index, experiment in enumerate(analysis.studies[study_name].experiments):
            timelines = experiment.result.local_timelines
            violations = violations_for_experiment(scenario_name, timelines)
            assert not violations, (
                f"{scenario_name} ({study_name}, experiment {index}): "
                + "; ".join(violations)
            )
