"""Registry error paths and fault-token round trips for the protocol suite.

The scenario registry is the seam every workload plugs into, so its
failure modes are part of the contract: duplicate names must be rejected
at registration time, unknown names must produce an actionable
"did you mean" diagnosis, and every fault a protocol scenario declares —
crash faults, state-triggered network faults, scheduled network faults —
must survive the textual fault-specification format through the *real*
parser, because that format is how campaigns are archived and re-audited.
"""

from __future__ import annotations

import pytest

from invariants import SCENARIO_INVARIANTS
from repro.core.specs.fault_spec import (
    format_fault_specification,
    parse_fault_specification,
)
from repro.errors import SpecificationError, UnknownScenarioError
from repro.scenarios import DEFAULT_REGISTRY, Scenario, ScenarioRegistry
from repro.sim.topology import NetworkFaultSpec

PROTOCOL_SCENARIOS = tuple(SCENARIO_INVARIANTS)


def _dummy_builder(name="dummy", experiments=1, seed=0):
    raise AssertionError("never built")


class TestRegistration:
    def test_duplicate_registration_is_a_specification_error(self):
        registry = ScenarioRegistry()
        registry.register(Scenario(name="dup", description="", builder=_dummy_builder))
        with pytest.raises(SpecificationError, match="'dup' is already registered"):
            registry.register(
                Scenario(name="dup", description="other", builder=_dummy_builder)
            )

    def test_duplicate_rejection_leaves_the_original_entry(self):
        registry = ScenarioRegistry()
        original = registry.register(
            Scenario(name="dup", description="first", builder=_dummy_builder)
        )
        with pytest.raises(SpecificationError):
            registry.register(
                Scenario(name="dup", description="second", builder=_dummy_builder)
            )
        assert registry.get("dup") is original
        assert registry.names().count("dup") == 1


class TestUnknownScenarioDiagnosis:
    def test_typo_gets_a_did_you_mean_suggestion(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            DEFAULT_REGISTRY.get("raft-electoin")
        message = str(excinfo.value)
        assert "did you mean" in message
        assert "'raft-election'" in message

    def test_closest_name_is_suggested_first(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            DEFAULT_REGISTRY.get("quorum-registry")
        message = str(excinfo.value)
        suggestions = message.split("did you mean ")[1].split("?")[0]
        assert suggestions.split(" or ")[0] == "'quorum-register'"

    def test_hopeless_name_still_lists_every_known_scenario(self):
        with pytest.raises(UnknownScenarioError) as excinfo:
            DEFAULT_REGISTRY.get("zzzzzz")
        message = str(excinfo.value)
        assert "did you mean" not in message
        for name in DEFAULT_REGISTRY.names():
            assert name in message

    def test_empty_registry_reports_none(self):
        with pytest.raises(UnknownScenarioError, match="<none>"):
            ScenarioRegistry().get("anything")


class TestFaultTokenRoundTrips:
    """Every protocol scenario's faults survive the textual format."""

    @pytest.mark.parametrize("scenario_name", PROTOCOL_SCENARIOS)
    def test_machine_fault_specifications_round_trip(self, scenario_name):
        study = DEFAULT_REGISTRY.get(scenario_name).build(experiments=1)
        for nickname, specification in sorted(study.fault_specifications().items()):
            if not specification.faults:
                continue
            text = format_fault_specification(specification)
            reparsed = parse_fault_specification(text)
            assert reparsed.describe() == specification.describe(), (
                f"{scenario_name}/{nickname}: fault lines changed through the parser"
            )
            assert format_fault_specification(reparsed) == text, (
                f"{scenario_name}/{nickname}: formatting is not a fixed point"
            )

    @pytest.mark.parametrize("scenario_name", PROTOCOL_SCENARIOS)
    def test_scheduled_network_tokens_round_trip(self, scenario_name):
        study = DEFAULT_REGISTRY.get(scenario_name).build(experiments=1)
        for scheduled in study.network.schedule:
            token = scheduled.spec.to_token()
            assert NetworkFaultSpec.from_token(token).to_token() == token

    def test_the_suite_exercises_every_fault_shape(self):
        """The protocol scenarios jointly cover crash faults, state-triggered
        network faults, and scheduled network faults — if a variant loses
        its faults, the round-trip tests above would silently shrink."""
        crash = network = scheduled = 0
        for scenario_name in PROTOCOL_SCENARIOS:
            study = DEFAULT_REGISTRY.get(scenario_name).build(experiments=1)
            for specification in study.fault_specifications().values():
                for fault in specification.faults:
                    if fault.network is None:
                        crash += 1
                    else:
                        network += 1
            scheduled += len(study.network.schedule)
        assert crash >= 6, f"expected crash faults across the suite, saw {crash}"
        assert network >= 2, f"expected state-triggered network faults, saw {network}"
        assert scheduled >= 2, f"expected scheduled network faults, saw {scheduled}"
