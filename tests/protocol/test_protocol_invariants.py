"""The protocol scenario suite, audited end to end.

Three layers:

* **Invariants** — every protocol scenario of the default registry runs
  on the serial backend and every experiment's timelines must satisfy
  the scenario's machine-checkable safety properties
  (:mod:`invariants`), non-vacuously (the headline protocol-note kind
  must actually appear somewhere in the study).
* **Differential** — the four base scenarios run under
  {serial, process-pool, distributed} × {jsonl, columnar} and every
  combination must be bit-identical to the serial/jsonl reference: same
  store fingerprint, same per-experiment payloads, same measure values —
  and the invariants are replayed from the *store-loaded* records, so
  the structured protocol notes provably survive both codecs and every
  process boundary.
* **Properties** — the invariants hold across randomly drawn master
  seeds, via hypothesis when installed and a deterministic seeded table
  always, sharing the same check function.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from invariants import (
    SCENARIO_ACTIVITY,
    SCENARIO_INVARIANTS,
    assert_invariants,
    collect_notes,
    violations_for_experiment,
)
from repro.core.campaign import CampaignConfig
from repro.core.execution import DISTRIBUTED, ExecutionConfig, available_backends
from repro.pipeline import run_and_analyze
from repro.scenarios import DEFAULT_REGISTRY
from repro.store import CampaignStore, result_to_dict

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ModuleNotFoundError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

PROTOCOL_SCENARIOS = tuple(SCENARIO_INVARIANTS)

#: The four apps, one representative scenario each, for the expensive
#: cross-backend differential matrix.
BASE_SCENARIOS = ("raft-election", "quorum-register", "swim-detector", "dfs-master")

needs_fork = pytest.mark.skipif(
    DISTRIBUTED not in available_backends(),
    reason="process-pool/distributed backends need the fork start method",
)


def run_scenario(name: str, experiments: int = 3, seed: int = 0):
    """One in-memory serial run of a registry scenario, timelines kept."""
    study = DEFAULT_REGISTRY.build(name, experiments=experiments, seed=seed)
    campaign = CampaignConfig(name=f"protocol-{name}", studies=[study])
    return run_and_analyze(
        campaign, execution=ExecutionConfig(keep_raw_results=True)
    )


# ---------------------------------------------------------------------------
# Registry coverage
# ---------------------------------------------------------------------------


def test_invariant_table_covers_exactly_the_protocol_scenarios():
    """Every ``protocol``-tagged scenario has invariants wired, and only those."""
    tagged = {
        scenario.name
        for scenario in DEFAULT_REGISTRY
        if "protocol" in scenario.tags
    }
    assert tagged == set(SCENARIO_INVARIANTS) == set(SCENARIO_ACTIVITY)


def test_every_protocol_app_has_a_falsifiable_invariant():
    """Each of the four apps contributes at least one checker (the
    self-test module proves each can actually fail)."""
    for base in BASE_SCENARIOS:
        assert SCENARIO_INVARIANTS[base], f"{base} has no invariants"


# ---------------------------------------------------------------------------
# Invariants on every protocol scenario (serial backend)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scenario_name", PROTOCOL_SCENARIOS)
def test_scenario_satisfies_its_invariants(scenario_name):
    analysis = run_scenario(scenario_name)
    assert_invariants(scenario_name, analysis)
    # Non-vacuity: the protocol really ran — its headline note kind
    # appears in at least one experiment of the study.
    kind = SCENARIO_ACTIVITY[scenario_name]
    study = analysis.studies[scenario_name]
    notes = [
        note
        for experiment in study.experiments
        for note in collect_notes(experiment.result.local_timelines, kind)
    ]
    assert notes, f"{scenario_name}: no @{kind} notes — invariants held vacuously"


@pytest.mark.parametrize("scenario_name", PROTOCOL_SCENARIOS)
def test_scenario_verification_accepts_a_majority(scenario_name):
    """The offline injection verification accepts most experiments.

    The protocol scenarios were tuned so their trigger windows exceed the
    notification latency (the paper's acceptance precondition); a
    majority-accepted study proves the faults genuinely landed inside
    their intended global states rather than being vacuously absent.
    """
    analysis = run_scenario(scenario_name, experiments=4, seed=1)
    experiments = analysis.studies[scenario_name].experiments
    accepted = sum(1 for experiment in experiments if experiment.accepted)
    assert accepted * 2 > len(experiments), (
        f"{scenario_name}: only {accepted}/{len(experiments)} experiments "
        "passed injection verification"
    )


def test_swim_partition_confirms_are_false_positives():
    """The partition scenario's measure counts *wrong* verdicts.

    Nothing crashes, yet members confirm peers dead across the cut — the
    exact property the confirmed-dead checker (deliberately not applied
    here) would flag.  This pins the false-positive mechanism the
    scenario exists to measure.
    """
    from invariants import check_swim_confirms, crashed_machines

    analysis = run_scenario("swim-partition", experiments=3, seed=2)
    study = analysis.studies["swim-partition"]
    confirms = 0
    for experiment in study.experiments:
        timelines = experiment.result.local_timelines
        assert not crashed_machines(timelines)
        false_positives = check_swim_confirms(timelines)
        observed = collect_notes(timelines, "swim-confirm")
        assert len(false_positives) == len(observed)
        confirms += len(observed)
    assert confirms > 0, "the partition never produced a false confirm"


def test_raft_partition_overlap_is_cross_term_only():
    """Isolating the leader produces dual leadership — but never same-term.

    The deposed leader keeps leading its old term on the minority side
    while the majority elects a successor in a newer term; the
    ``dual-leadership`` measure sees the overlap, and election safety
    (per term) still holds — the exact distinction the invariant
    encodes.
    """
    scenario = DEFAULT_REGISTRY.get("raft-election-partition")
    study = scenario.build(experiments=4, seed=0)
    campaign = CampaignConfig(name="raft-partition-probe", studies=[study])
    analysis = run_and_analyze(
        campaign, execution=ExecutionConfig(keep_raw_results=True)
    )
    assert_invariants("raft-election-partition", analysis)
    values = analysis.studies[study.name].measure_values(scenario.measure_factory())
    assert any(value is not None and value > 0 for value in values), (
        "the partition never produced overlapping leadership"
    )


def test_dfs_partition_produces_audited_divergence():
    """The short split leaves a stale replica the audit must flag.

    ``d1`` keeps its placements (the split is shorter than the dead
    timeout) but misses versioned updates; after the heal its heartbeat
    digests betray the stale versions, the master enters ``DIVERGED``
    (``@dfs-diverged``), and the repair stores restore agreement —
    without ever violating per-version store consistency.
    """
    analysis = run_scenario("dfs-master-partition", experiments=3, seed=0)
    assert_invariants("dfs-master-partition", analysis)
    study = analysis.studies["dfs-master-partition"]
    diverged = [
        note
        for experiment in study.experiments
        for note in collect_notes(experiment.result.local_timelines, "dfs-diverged")
    ]
    assert diverged, "the partition never drove the audit into DIVERGED"


# ---------------------------------------------------------------------------
# Differential: backends × codecs are one system
# ---------------------------------------------------------------------------


def _store_fingerprint(store, study_name: str) -> str:
    digest = hashlib.sha256()
    records = store.load_study_records(study_name)
    for index in sorted(records):
        canonical = json.dumps(
            result_to_dict(records[index]), sort_keys=True, separators=(",", ":")
        )
        digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


def _run_combination(scenario_name, directory, codec, execution):
    """One store-backed run; returns (fingerprint, payloads, measures)."""
    study = DEFAULT_REGISTRY.build(scenario_name, experiments=2, seed=13)
    campaign = CampaignConfig(name=f"differential-{scenario_name}", studies=[study])
    store = CampaignStore(directory, codec=codec)
    with store:
        analysis = run_and_analyze(campaign, store=store, execution=execution)
    records = store.load_study_records(study.name)
    # The invariants replay from the *loaded* records: the protocol notes
    # made the full trip through the backend and the codec.
    for index in sorted(records):
        violations = violations_for_experiment(
            scenario_name, records[index].local_timelines
        )
        assert not violations, f"{scenario_name}[{index}] via store: {violations}"
    scenario = DEFAULT_REGISTRY.get(scenario_name)
    measure = scenario.measure_factory()
    values = analysis.studies[study.name].measure_values(measure)
    payloads = {index: result_to_dict(record) for index, record in records.items()}
    return _store_fingerprint(store, study.name), payloads, values


@needs_fork
@pytest.mark.parametrize("scenario_name", BASE_SCENARIOS)
def test_backends_and_codecs_are_bit_identical(scenario_name, tmp_path):
    executions = {
        "serial": ExecutionConfig(),
        "pool": ExecutionConfig.process_pool(workers=2),
        "distributed": ExecutionConfig.distributed(workers=2, chunk_size=1),
    }
    reference = _run_combination(
        scenario_name, tmp_path / "reference", "jsonl", executions["serial"]
    )
    for backend, execution in executions.items():
        for codec in ("jsonl", "columnar"):
            if backend == "serial" and codec == "jsonl":
                continue  # the reference itself
            candidate = _run_combination(
                scenario_name, tmp_path / f"{backend}-{codec}", codec, execution
            )
            context = f"{scenario_name}: {backend}×{codec} vs serial×jsonl"
            assert candidate[1] == reference[1], f"payloads diverged ({context})"
            assert candidate[2] == reference[2], f"measures diverged ({context})"
            assert candidate[0] == reference[0], f"fingerprints diverged ({context})"


# ---------------------------------------------------------------------------
# Properties over seeds (hypothesis when present, seeded table always)
# ---------------------------------------------------------------------------

PROPERTY_SCENARIOS = ("raft-election", "quorum-register")


def check_invariants_at_seed(scenario_name: str, seed: int) -> None:
    analysis = run_scenario(scenario_name, experiments=1, seed=seed)
    assert_invariants(scenario_name, analysis)


@pytest.mark.parametrize("scenario_name", PROPERTY_SCENARIOS)
def test_invariants_hold_across_seeded_table(scenario_name):
    for seed in (3, 29, 271, 2718, 31415):
        check_invariants_at_seed(scenario_name, seed)


if HAVE_HYPOTHESIS:

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @pytest.mark.parametrize("scenario_name", PROPERTY_SCENARIOS)
    def test_invariants_hold_at_hypothesis_seeds(scenario_name, seed):
        check_invariants_at_seed(scenario_name, seed)
