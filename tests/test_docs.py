"""Doc-sync tests: the documentation's code can never silently rot.

Three layers, mirroring the README scenario-table check in
``tests/test_scenarios.py``:

* every fenced ``python`` code block in ``README.md`` and ``docs/*.md``
  must at least **compile** (the ``python -m compileall`` of the docs);
* the README's runnable snippets (quickstart, persistence & resume) are
  **executed** in a scratch directory and must run clean;
* the prose is spot-checked for the contracts it promises (the quickstart
  must mention the ``store=`` parameter, the architecture tour must cover
  every phase module).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.core.execution import DISTRIBUTED, PROCESS_POOL, available_backends

ROOT = Path(__file__).resolve().parent.parent
README = ROOT / "README.md"
DOCS = ROOT / "docs"

def extract_code_blocks(path: Path, language: str = "python") -> list[tuple[int, str]]:
    """All fenced code blocks of ``language`` in ``path`` as (line, code)."""
    blocks: list[tuple[int, str]] = []
    in_block = False
    block_language = ""
    current: list[str] = []
    start = 0
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        stripped = line.strip()
        if not in_block and stripped.startswith("```"):
            in_block = True
            block_language = stripped[3:].strip()
            current = []
            start = number + 1
        elif in_block and stripped == "```":
            if block_language == language:
                blocks.append((start, "\n".join(current)))
            in_block = False
        elif in_block:
            current.append(line)
    return blocks


def documented_files() -> list[Path]:
    files = [README]
    if DOCS.is_dir():
        files.extend(sorted(DOCS.glob("*.md")))
    return files


class TestDocCodeCompiles:
    @pytest.mark.parametrize("path", documented_files(), ids=lambda p: p.name)
    def test_every_python_block_compiles(self, path):
        blocks = extract_code_blocks(path)
        for line, code in blocks:
            try:
                compile(code, f"{path.name}:{line}", "exec")
            except SyntaxError as error:  # pragma: no cover - a failing doc
                pytest.fail(f"{path.name} line {line}: snippet does not compile: {error}")

    def test_readme_has_runnable_snippets(self):
        # The quickstart and persistence snippets below must keep existing;
        # this guards the execution tests against silently matching nothing.
        blocks = [code for _, code in extract_code_blocks(README)]
        assert any("run_and_analyze(campaign" in code for code in blocks)
        assert any("CampaignStore(" in code for code in blocks)


class TestReadmeSnippetsRun:
    def run_snippet(self, code: str, tmp_path, monkeypatch) -> dict:
        monkeypatch.chdir(tmp_path)
        namespace: dict = {"__name__": "__readme__"}
        exec(compile(code, "README.md", "exec"), namespace)
        return namespace

    @pytest.mark.parametrize(
        "marker",
        [
            "run_and_analyze(campaign",
            "CampaignStore(",
            "ExecutionConfig.distributed(",
            "notes_of_kind(",
        ],
        ids=["quickstart", "persistence", "distributed", "protocol"],
    )
    def test_snippet_executes(self, marker, tmp_path, monkeypatch):
        snippets = [
            code for _, code in extract_code_blocks(README) if marker in code
        ]
        assert snippets, f"README lost its {marker!r} snippet"
        for code in snippets:
            if "process_pool" in code and PROCESS_POOL not in available_backends():
                pytest.skip("snippet needs the fork start method")
            if "distributed(" in code and DISTRIBUTED not in available_backends():
                pytest.skip("snippet needs the fork start method")
            self.run_snippet(code, tmp_path, monkeypatch)


class TestDocContracts:
    def test_readme_scenario_table_is_in_sync(self):
        """The generated scenario table matches the live registry.

        ``sync_markdown_table(write=False)`` is the pure drift check; a
        stale table is regenerated with
        ``PYTHONPATH=src python -m repro.scenarios.catalog``.
        """
        from repro.scenarios import DEFAULT_REGISTRY

        assert DEFAULT_REGISTRY.sync_markdown_table(README, write=False), (
            "README scenario table is stale; regenerate it with "
            "'PYTHONPATH=src python -m repro.scenarios.catalog'"
        )

    def test_architecture_tour_covers_the_protocol_suite(self):
        """The tour documents each protocol app with its invariant and measure."""
        text = (DOCS / "architecture.md").read_text(encoding="utf-8")
        assert "Protocol scenario suite" in text
        for token in (
            "repro.apps.raft",
            "repro.apps.quorum",
            "repro.apps.swim",
            "repro.apps.dfsmaster",
            "tests/protocol",
            "dual-leadership",
            "stale-reads",
            "confirm-events",
            "replica-divergence",
        ):
            assert token in text, f"architecture tour does not mention {token}"

    def test_quickstart_mentions_the_store_parameter(self):
        text = README.read_text(encoding="utf-8")
        quickstart = text.split("## Quickstart")[1].split("\n## ")[0]
        assert "store=" in quickstart, (
            "the README quickstart must mention that run_and_analyze accepts a store"
        )
        assert "Persistence & resume" in text

    def test_architecture_tour_exists_and_covers_every_phase(self):
        tour = DOCS / "architecture.md"
        assert tour.is_file(), "docs/architecture.md is missing"
        text = tour.read_text(encoding="utf-8")
        for module in (
            "repro.core",
            "repro.sim",
            "repro.analysis",
            "repro.measures",
            "repro.store",
            "repro.dist",
            "scenarios",
        ):
            assert module in text, f"architecture tour does not mention {module}"
        # The store data-flow diagram is part of the tour's contract.
        assert "CampaignStore" in text
        assert "manifest.json" in text

    def test_architecture_tour_module_references_exist(self):
        """Every `src/...`-style path the tour references must exist."""
        text = (DOCS / "architecture.md").read_text(encoding="utf-8")
        for reference in re.findall(r"`((?:sim|core|analysis|measures)/\w+\.py)`", text):
            assert (ROOT / "src" / "repro" / reference).is_file(), (
                f"architecture.md references missing module {reference}"
            )
