"""Tests for the state machine, fault parser, probe, and recorder components."""

import pytest

from repro.core.expression import And, StateAtom
from repro.core.faults import FaultParser
from repro.core.probe import CallbackProbe
from repro.core.recorder import Recorder
from repro.core.specs.fault_spec import FaultDefinition, FaultSpecification, FaultTrigger
from repro.core.specs.state_machine import StateSpecification, build_specification
from repro.core.statemachine import StateMachine
from repro.core.runtime.transport import LoopbackTransport
from repro.core.timeline import LocalTimeline, RecordKind
from repro.errors import RuntimePhaseError


def toggle_spec(name, notify=()):
    return build_specification(
        name,
        ["BEGIN", "IDLE", "ACTIVE", "EXIT"],
        ["GO_ACTIVE", "GO_IDLE", "DONE"],
        [
            StateSpecification("IDLE", notify=notify,
                               transitions={"GO_ACTIVE": "ACTIVE", "DONE": "EXIT"}),
            StateSpecification("ACTIVE", notify=notify,
                               transitions={"GO_IDLE": "IDLE", "DONE": "EXIT"}),
            StateSpecification("EXIT", notify=notify, transitions={}),
        ],
    )


class ManualClock:
    def __init__(self):
        self.time = 0.0

    def __call__(self):
        return self.time

    def advance(self, dt):
        self.time += dt
        return self.time


def make_machine(name="sm1", notify=(), faults=None, clock=None):
    clock = clock or ManualClock()
    timeline = LocalTimeline(
        machine=name,
        state_machines=(name,),
        global_states=("BEGIN", "IDLE", "ACTIVE", "EXIT", "CRASH", "RESTART"),
        events=("GO_ACTIVE", "GO_IDLE", "DONE", "CRASH", "RESTART", "default"),
        faults=faults or FaultSpecification(),
    )
    recorder = Recorder(timeline, clock=clock, host="hosta")
    parser = FaultParser(faults or FaultSpecification(), recorder=recorder)
    machine = StateMachine(toggle_spec(name, notify), recorder, fault_parser=parser, clock=clock)
    return machine, parser, timeline, clock


class TestStateMachine:
    def test_initial_state_is_begin(self):
        machine, _, _, _ = make_machine()
        assert machine.current_state == "BEGIN"
        assert not machine.initialized

    def test_first_notification_sets_initial_state(self):
        machine, _, timeline, _ = make_machine()
        machine.notify_event("IDLE")
        assert machine.initialized
        assert machine.current_state == "IDLE"
        record = timeline.records[0]
        assert record.kind is RecordKind.STATE_CHANGE
        assert record.new_state == "IDLE"
        assert record.event == "default"

    def test_events_drive_transitions(self):
        machine, _, timeline, clock = make_machine()
        machine.notify_event("IDLE")
        clock.advance(0.5)
        machine.notify_event("GO_ACTIVE")
        assert machine.current_state == "ACTIVE"
        clock.advance(0.5)
        machine.notify_event("GO_IDLE")
        assert machine.current_state == "IDLE"
        assert [record.new_state for record in timeline.state_changes()] == [
            "IDLE", "ACTIVE", "IDLE",
        ]
        assert timeline.state_changes()[1].time == pytest.approx(0.5)

    def test_unknown_event_is_ignored_and_remembered(self):
        machine, _, timeline, _ = make_machine()
        machine.notify_event("IDLE")
        machine.notify_event("GO_IDLE")  # no transition from IDLE on GO_IDLE
        assert machine.current_state == "IDLE"
        assert machine.ignored_events == [("IDLE", "GO_IDLE")]
        assert len(timeline.state_changes()) == 1

    def test_partial_view_tracks_self_and_remotes(self):
        machine, _, _, _ = make_machine()
        machine.notify_event("IDLE")
        machine.receive_remote_state("sm2", "ACTIVE")
        view = machine.partial_view
        assert view["sm1"] == "IDLE"
        assert view["sm2"] == "ACTIVE"

    def test_duplicate_remote_state_does_not_retrigger_parser(self):
        faults = FaultSpecification.from_definitions(
            [FaultDefinition("f", StateAtom("sm2", "ACTIVE"), FaultTrigger.ALWAYS)]
        )
        machine, parser, _, _ = make_machine(faults=faults)
        machine.notify_event("IDLE")
        machine.receive_remote_state("sm2", "ACTIVE")
        machine.receive_remote_state("sm2", "ACTIVE")
        assert len(parser.injections) == 1

    def test_notifications_sent_to_notify_list(self):
        transport = LoopbackTransport()
        sender, _, _, _ = make_machine("sm1", notify=("sm2",))
        receiver, _, _, _ = make_machine("sm2")
        transport.register(sender)
        transport.register(receiver)
        sender.notify_event("IDLE")
        sender.notify_event("GO_ACTIVE")
        assert receiver.partial_view["sm1"] == "ACTIVE"

    def test_crash_records_crash_state(self):
        machine, _, timeline, clock = make_machine()
        machine.notify_event("IDLE")
        clock.advance(1.0)
        machine.notify_on_crash()
        assert machine.crashed
        assert timeline.final_state() == "CRASH"
        with pytest.raises(RuntimePhaseError):
            machine.notify_event("GO_ACTIVE")

    def test_exit_marks_machine_exited(self):
        machine, _, _, _ = make_machine()
        machine.notify_event("IDLE")
        machine.notify_on_exit()
        assert machine.exited
        with pytest.raises(RuntimePhaseError):
            machine.notify_event("GO_ACTIVE")

    def test_bulk_update_view(self):
        faults = FaultSpecification.from_definitions(
            [FaultDefinition("f", And(StateAtom("a", "X"), StateAtom("b", "Y")),
                             FaultTrigger.ONCE)]
        )
        machine, parser, _, _ = make_machine(faults=faults)
        machine.notify_event("IDLE")
        machine.bulk_update_view({"a": "X", "b": "Y"})
        assert len(parser.injections) == 1


class TestFaultParser:
    def make_parser(self, definitions, injector=None):
        faults = FaultSpecification.from_definitions(definitions)
        probe = CallbackProbe(injector)
        machine, parser, timeline, clock = make_machine(faults=faults)
        probe.attach(machine)
        parser.attach_probe(probe)
        return machine, parser, probe, timeline, clock

    def test_positive_edge_triggered(self):
        machine, parser, probe, _, _ = self.make_parser(
            [FaultDefinition("f", StateAtom("sm1", "ACTIVE"), FaultTrigger.ALWAYS)]
        )
        machine.notify_event("IDLE")
        assert parser.injections == []
        machine.notify_event("GO_ACTIVE")
        assert len(parser.injections) == 1
        # Staying true must not retrigger.
        machine.receive_remote_state("other", "ANY")
        assert len(parser.injections) == 1

    def test_always_fires_on_every_entry(self):
        machine, parser, _, _, _ = self.make_parser(
            [FaultDefinition("f", StateAtom("sm1", "ACTIVE"), FaultTrigger.ALWAYS)]
        )
        machine.notify_event("IDLE")
        for _ in range(3):
            machine.notify_event("GO_ACTIVE")
            machine.notify_event("GO_IDLE")
        assert len(parser.injections) == 3

    def test_once_fires_only_first_time(self):
        machine, parser, _, _, _ = self.make_parser(
            [FaultDefinition("f", StateAtom("sm1", "ACTIVE"), FaultTrigger.ONCE)]
        )
        machine.notify_event("IDLE")
        for _ in range(3):
            machine.notify_event("GO_ACTIVE")
            machine.notify_event("GO_IDLE")
        assert len(parser.injections) == 1
        assert parser.fired("f")

    def test_injection_recorded_on_timeline(self):
        machine, parser, _, timeline, clock = self.make_parser(
            [FaultDefinition("f", StateAtom("sm1", "ACTIVE"), FaultTrigger.ONCE)]
        )
        machine.notify_event("IDLE")
        clock.advance(2.0)
        machine.notify_event("GO_ACTIVE")
        injections = timeline.fault_injections()
        assert len(injections) == 1
        assert injections[0].fault == "f"
        assert injections[0].time == pytest.approx(2.0)

    def test_global_state_fault_requires_remote_state(self):
        machine, parser, _, _, _ = self.make_parser(
            [FaultDefinition("f", And(StateAtom("sm1", "ACTIVE"), StateAtom("sm2", "READY")),
                             FaultTrigger.ONCE)]
        )
        machine.notify_event("IDLE")
        machine.notify_event("GO_ACTIVE")
        assert parser.injections == []
        machine.receive_remote_state("sm2", "READY")
        assert len(parser.injections) == 1

    def test_injector_callback_time_used(self):
        machine, parser, probe, timeline, _ = self.make_parser(
            [FaultDefinition("f", StateAtom("sm1", "ACTIVE"), FaultTrigger.ONCE)],
            injector=lambda name: 123.456,
        )
        machine.notify_event("IDLE")
        machine.notify_event("GO_ACTIVE")
        assert timeline.fault_injections()[0].time == pytest.approx(123.456)
        assert probe.injected == [("f", 123.456)]

    def test_reset_clears_history(self):
        machine, parser, _, _, _ = self.make_parser(
            [FaultDefinition("f", StateAtom("sm1", "ACTIVE"), FaultTrigger.ONCE)]
        )
        machine.notify_event("IDLE")
        machine.notify_event("GO_ACTIVE")
        parser.reset()
        assert parser.injections == []
        assert not parser.fired("f")

    def test_expression_values_snapshot(self):
        faults = [
            FaultDefinition("f1", StateAtom("a", "X"), FaultTrigger.ONCE),
            FaultDefinition("f2", StateAtom("b", "Y"), FaultTrigger.ONCE),
        ]
        parser = FaultParser(FaultSpecification.from_definitions(faults))
        assert parser.expression_values({"a": "X"}) == {"f1": True, "f2": False}


class TestRecorder:
    def test_records_use_clock_and_host(self):
        clock = ManualClock()
        timeline = LocalTimeline(machine="sm", global_states=("A",), events=("e",))
        recorder = Recorder(timeline, clock=clock, host="hostx")
        clock.advance(1.25)
        record = recorder.record_state_change("e", "A")
        assert record.time == pytest.approx(1.25)
        assert record.host == "hostx"

    def test_explicit_time_overrides_clock(self):
        timeline = LocalTimeline(machine="sm", global_states=("A",), events=("e",))
        recorder = Recorder(timeline, clock=lambda: 9.0, host="h")
        assert recorder.record_fault_injection("f", time=4.5).time == pytest.approx(4.5)

    def test_callable_host(self):
        hosts = iter(["h1", "h2"])
        timeline = LocalTimeline(machine="sm", global_states=("A",), events=("e",))
        recorder = Recorder(timeline, clock=lambda: 0.0, host=lambda: next(hosts))
        assert recorder.record_state_change("e", "A").host == "h1"
        assert recorder.record_state_change("e", "A").host == "h2"

    def test_notes(self):
        timeline = LocalTimeline(machine="sm")
        recorder = Recorder(timeline, clock=lambda: 0.0, host="h")
        recorder.record_note("hello")
        assert timeline.notes == ["hello"]
