"""Tests of the determinism lint (``repro.devtools.lint``).

Three layers:

* every rule R001–R006 has a paired bad/good fixture tree under
  ``tests/devtools/fixtures/`` — the bad tree must produce findings of
  exactly that rule, the good tree must lint clean;
* the real ``src/`` tree must lint clean (the same invocation CI runs),
  and the CLI exit codes must gate correctly;
* inline suppression must waive a finding only when it names the right
  rule *and* carries a reason.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.devtools.lint import BAD_SUPPRESSION_ID, REGISTRY, run_lint

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

RULE_IDS = ("R001", "R002", "R003", "R004", "R005", "R006")


def lint_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestRegistry:
    def test_every_contract_rule_is_registered(self):
        assert set(RULE_IDS) <= set(REGISTRY)

    def test_rules_carry_names_and_descriptions(self):
        for rule_class in REGISTRY.values():
            assert rule_class.rule_id
            assert rule_class.name
            assert rule_class.description


class TestFixtures:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_is_flagged(self, rule_id):
        diagnostics = run_lint([FIXTURES / rule_id.lower() / "bad"])
        assert diagnostics, f"{rule_id} bad fixture produced no findings"
        assert {d.rule_id for d in diagnostics} == {rule_id}, [
            d.render() for d in diagnostics
        ]

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_good_fixture_is_clean(self, rule_id):
        diagnostics = run_lint([FIXTURES / rule_id.lower() / "good"])
        assert diagnostics == [], [d.render() for d in diagnostics]

    def test_bad_fixtures_report_clickable_positions(self):
        diagnostics = run_lint([FIXTURES / "r001" / "bad"])
        for diagnostic in diagnostics:
            rendered = diagnostic.render()
            path, line, column = rendered.split(":")[:3]
            assert path.endswith(".py")
            assert int(line) >= 1 and int(column) >= 1

    def test_select_narrows_the_run(self):
        diagnostics = run_lint([FIXTURES / "r002" / "bad"], select=["R001"])
        assert diagnostics == []

    def test_r005_covers_both_format_version_pairs(self):
        # The bad tree must flag the JSONL pair *and* the columnar pair;
        # one regressing must never hide behind the other staying green.
        diagnostics = run_lint([FIXTURES / "r005" / "bad"])
        flagged = {Path(d.path).name for d in diagnostics}
        assert flagged == {"format.py", "columnar.py"}, [
            d.render() for d in diagnostics
        ]

    def test_r005_ignores_unpaired_version_constants(self, tmp_path):
        # MANIFEST_FORMAT_VERSION has no readable-set partner on purpose
        # (its reader is single-version); declaring it alone is clean.
        path = tmp_path / "store" / "manifest.py"
        path.parent.mkdir(parents=True)
        path.write_text("MANIFEST_FORMAT_VERSION = 1\n", encoding="utf-8")
        assert run_lint([tmp_path]) == []


class TestRealTree:
    def test_source_tree_lints_clean(self):
        diagnostics = run_lint([SRC / "repro"])
        assert diagnostics == [], "\n".join(d.render() for d in diagnostics)

    def test_cli_exits_zero_on_src(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", "src"],
            cwd=REPO_ROOT,
            env=lint_env(),
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_cli_exits_nonzero_on_bad_fixture(self, rule_id):
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.devtools.lint",
                str(FIXTURES / rule_id.lower() / "bad"),
            ],
            cwd=REPO_ROOT,
            env=lint_env(),
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 1, completed.stdout + completed.stderr
        assert rule_id in completed.stdout

    def test_cli_lists_every_rule(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
            cwd=REPO_ROOT,
            env=lint_env(),
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0
        for rule_id in RULE_IDS:
            assert rule_id in completed.stdout


class TestSuppression:
    def write(self, tmp_path: Path, relative: str, text: str) -> Path:
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return tmp_path

    def test_trailing_suppression_with_reason_waives_the_finding(self, tmp_path):
        root = self.write(
            tmp_path,
            "sim/clocky.py",
            "import time\n"
            "START = time.time()  # repro-lint: disable=R002 build stamp, not sim state\n",
        )
        assert run_lint([root]) == []

    def test_standalone_suppression_covers_the_next_line(self, tmp_path):
        root = self.write(
            tmp_path,
            "sim/fanout.py",
            "def fan_out(mapping):\n"
            "    # repro-lint: disable=R003 insertion order fixed at config time\n"
            "    return [value for value in mapping.values()]\n",
        )
        assert run_lint([root]) == []

    def test_suppression_without_reason_is_itself_a_finding(self, tmp_path):
        root = self.write(
            tmp_path,
            "sim/clocky.py",
            "import time\n"
            "START = time.time()  # repro-lint: disable=R002\n",
        )
        rule_ids = {d.rule_id for d in run_lint([root])}
        # The reason-less directive suppresses nothing and is flagged itself.
        assert rule_ids == {BAD_SUPPRESSION_ID, "R002"}

    def test_suppression_only_waives_the_named_rule(self, tmp_path):
        root = self.write(
            tmp_path,
            "sim/clocky.py",
            "import time\n"
            "START = time.time()  # repro-lint: disable=R001 wrong rule named here\n",
        )
        assert {d.rule_id for d in run_lint([root])} == {"R002"}

    def test_suppression_can_name_several_rules(self, tmp_path):
        root = self.write(
            tmp_path,
            "sim/clocky.py",
            "import random\n"
            "import time\n"
            "SEED = random.random()  # repro-lint: disable=R001,R002 fixture exercising both\n",
        )
        diagnostics = run_lint([root])
        # The import line itself is still flagged; only the draw is waived.
        assert [d.rule_id for d in diagnostics] == ["R001"]
        assert diagnostics[0].line == 1
