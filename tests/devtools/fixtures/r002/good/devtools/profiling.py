"""Good: devtools are allowlisted — timing a lint run is not simulation state."""

import time


def elapsed(start: float) -> float:
    return time.perf_counter() - start
