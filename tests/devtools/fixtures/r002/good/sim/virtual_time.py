"""Good: deterministic code reads simulated time, never the host's clock."""


def stamp(kernel) -> float:
    return kernel.now


def local_time(host) -> float:
    return host.read_clock()
