"""Bad: reads the ambient wall clock inside a deterministic module."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()


def label() -> str:
    return datetime.now().isoformat()
