"""Bad: the reader silently dropped support for format version 2."""

RECORD_FORMAT_VERSION = 3

READABLE_FORMAT_VERSIONS = frozenset({1, RECORD_FORMAT_VERSION})
