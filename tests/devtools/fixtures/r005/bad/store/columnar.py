"""Bad: a columnar version bump without extending the readable set."""

COLUMNAR_FORMAT_VERSION = 2

READABLE_COLUMNAR_VERSIONS = frozenset({COLUMNAR_FORMAT_VERSION})
