"""Good: the columnar reader keeps every written version decodable.

The manifest constant below is deliberately *unpaired*: its reader is
single-version by design, and the rule must leave it alone.
"""

COLUMNAR_FORMAT_VERSION = 2

READABLE_COLUMNAR_VERSIONS = frozenset({1, COLUMNAR_FORMAT_VERSION})

MANIFEST_FORMAT_VERSION = 1
