"""Good: every version up to the current one stays decodable."""

RECORD_FORMAT_VERSION = 3

READABLE_FORMAT_VERSIONS = frozenset({1, 2, RECORD_FORMAT_VERSION})
