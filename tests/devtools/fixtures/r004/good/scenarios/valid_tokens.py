"""Good: fault grammar literals that parse against the real grammars."""

PARTITION_TOKEN = "network:partition[hosta|hostb+hostc;duration=0.08]"
OUTAGE_TOKEN = "network:link_down[hosta->hostb;one-way;duration=0.05]"

SPEC = parse_fault_specification(  # noqa: F821 - lint fixture
    "F1 ((SM1:ELECT) & (SM2:FOLLOW)) always\n"
    "NP1 (coordinator:PREPARE) once network:heal\n"
)
