"""Bad: typo'd fault grammar literals that would only fail mid-campaign."""

PARTITION_TOKEN = "network:partiton[hosta|hostb]"

SPEC = parse_fault_specification("F1 (A:B) sometimes\n")  # noqa: F821 - lint fixture
