"""Bad: dist code sleeping on the real clock instead of the injected one."""

import asyncio
import time
from time import sleep


def pace_retry(delay: float) -> None:
    time.sleep(delay)  # R006: bare time.sleep in repro.dist


def stall(delay: float) -> None:
    sleep(delay)  # R006: via `from time import sleep` above


async def supervise_tick(interval: float) -> None:
    await asyncio.sleep(interval)  # R006: bare asyncio.sleep in repro.dist
