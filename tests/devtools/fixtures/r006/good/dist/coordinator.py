"""Good: dist code taking all of its time through the injected clock."""


class Coordinator:
    def __init__(self, clock) -> None:
        self.clock = clock

    async def pace_retry(self, delay: float) -> None:
        await self.clock.sleep(delay)

    async def supervise_tick(self, interval: float) -> None:
        await self.clock.sleep(interval)
