"""Good: dist/supervision.py is where the real clock may live."""

import asyncio
import time


class SystemClock:
    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds)

    def block(self, seconds: float) -> None:
        time.sleep(seconds)
