"""Good: unordered collections are sorted (or consumed order-insensitively)."""


def fan_out(targets, mapping):
    for target in sorted(set(targets)):
        yield target
    for key in sorted(mapping):
        yield mapping[key]


def summarize(targets, mapping) -> int:
    if any(value is None for value in mapping.values()):
        return 0
    return len(set(targets))
