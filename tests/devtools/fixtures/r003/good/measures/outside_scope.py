"""Good: outside sim/, apps/, core/ the ordered-iteration rule is out of scope.

Analysis-side code aggregates already-recorded results; iteration order
there cannot feed the RNG or the timeline.
"""


def aggregate(samples):
    total = 0.0
    for sample in set(samples):
        total += sample
    return total
