"""Bad: iteration order of sets and dict views can feed the RNG/timeline."""


def fan_out(targets, mapping):
    for target in set(targets):
        yield target
    for value in mapping.values():
        yield value
