"""Bad: draws ambient randomness instead of the injected stream."""

import random


def jitter() -> float:
    return random.random()
