"""Bad: numpy's global RNG bypasses the seeded RandomStreams discipline."""

import numpy as np


def noise(count: int):
    return np.random.default_rng().random(count)
