"""Good: applications draw from the per-node stream injected by the runtime."""


def jitter(ctx) -> float:
    return ctx.random.random()
