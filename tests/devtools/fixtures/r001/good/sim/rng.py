"""Good: the sanctioned stream-factory module is the one allowed importer."""

import random


def make_stream(seed: int) -> random.Random:
    return random.Random(seed)
