"""Tests for the specification objects and the paper's textual file formats."""

import pytest

from repro.core.expression import StateAtom
from repro.core.specs import (
    FaultDefinition,
    FaultSpecification,
    FaultTrigger,
    NodeFileEntry,
    StudyFile,
    format_fault_specification,
    format_node_file,
    format_state_machine_specification,
    parse_fault_specification,
    parse_machines_file,
    parse_node_file,
    parse_state_machine_specification,
)
from repro.core.specs.files import (
    DaemonContactEntry,
    DaemonStartupEntry,
    format_daemon_contact_file,
    format_daemon_startup_file,
    format_study_file,
    parse_daemon_contact_file,
    parse_daemon_startup_file,
    parse_study_file,
)
from repro.core.specs.state_machine import StateSpecification, build_specification
from repro.errors import SpecificationError

# The Section 5.3 specification of the state machine "black", verbatim.
BLACK_SPEC = """
global_state_list
BEGIN
INIT
RESTART_SM
ELECT
FOLLOW
LEAD
CRASH
EXIT
end_global_state_list
event_list
START
INIT_DONE
RESTART
RESTART_DONE
LEADER
FOLLOWER
LEADER_CRASH
CRASH
ERROR
end_event_list

state INIT notify green yellow
INIT_DONE ELECT
ERROR EXIT

state RESTART_SM notify green yellow
RESTART_DONE FOLLOW
ERROR EXIT

state ELECT notify
FOLLOWER FOLLOW
LEADER LEAD
CRASH CRASH
ERROR EXIT

state LEAD notify
CRASH CRASH
ERROR EXIT

state FOLLOW notify
LEADER_CRASH ELECT
CRASH CRASH
ERROR EXIT

state CRASH notify green yellow

state EXIT notify
"""


class TestStateMachineSpecification:
    def test_parse_chapter5_black(self):
        spec = parse_state_machine_specification(BLACK_SPEC, "black")
        assert spec.name == "black"
        assert len(spec.global_states) == 8
        assert len(spec.events) == 9
        assert spec.notify_list("INIT") == ("green", "yellow")
        assert spec.notify_list("ELECT") == ()
        assert spec.transition("ELECT", "LEADER") == "LEAD"
        assert spec.transition("FOLLOW", "LEADER_CRASH") == "ELECT"
        assert spec.transition("LEAD", "LEADER") is None

    def test_roundtrip_through_format(self):
        spec = parse_state_machine_specification(BLACK_SPEC, "black")
        text = format_state_machine_specification(spec)
        reparsed = parse_state_machine_specification(text, "black")
        assert reparsed == spec

    def test_reachability(self):
        spec = parse_state_machine_specification(BLACK_SPEC, "black")
        reachable = spec.reachable_states("INIT")
        assert "LEAD" in reachable
        assert "RESTART_SM" not in reachable

    def test_default_event_wildcard(self):
        spec = build_specification(
            "sm",
            ["A", "B"],
            ["go"],
            [StateSpecification("A", transitions={"default": "B"})],
        )
        assert spec.transition("A", "anything") == "B"

    def test_unknown_state_in_transition_rejected(self):
        with pytest.raises(SpecificationError):
            build_specification(
                "sm",
                ["A"],
                ["go"],
                [StateSpecification("A", transitions={"go": "MISSING"})],
            )

    def test_unknown_event_rejected(self):
        with pytest.raises(SpecificationError):
            build_specification(
                "sm",
                ["A", "B"],
                ["go"],
                [StateSpecification("A", transitions={"jump": "B"})],
            )

    def test_duplicate_states_rejected(self):
        with pytest.raises(SpecificationError):
            build_specification("sm", ["A", "A"], [], [])

    def test_missing_terminator_rejected(self):
        with pytest.raises(SpecificationError):
            parse_state_machine_specification("global_state_list\nA\n", "sm")

    def test_transition_outside_state_block_rejected(self):
        bad = (
            "global_state_list\nA\nend_global_state_list\n"
            "event_list\ngo\nend_event_list\ngo A\n"
        )
        with pytest.raises(SpecificationError):
            parse_state_machine_specification(bad, "sm")


class TestFaultSpecification:
    def test_parse_paper_example(self):
        spec = parse_fault_specification("F1 ((SM1:ELECT) & (SM2:FOLLOW)) always\n")
        assert spec.names() == ("F1",)
        fault = spec.get("F1")
        assert fault.trigger is FaultTrigger.ALWAYS
        assert fault.evaluate({"SM1": "ELECT", "SM2": "FOLLOW"})

    def test_parse_chapter5_specification(self):
        text = (
            "bfault1 (black:LEAD) always\n"
            "gfault2 ((black:CRASH) & ((green:FOLLOW) | (green:ELECT))) once\n"
        )
        spec = parse_fault_specification(text)
        assert spec.names() == ("bfault1", "gfault2")
        assert spec.get("gfault2").trigger is FaultTrigger.ONCE
        assert spec.machines() == frozenset({"black", "green"})

    def test_roundtrip(self):
        text = "bfault1 (black:LEAD) always\ngfault3 ((green:FOLLOW) | (green:ELECT)) once\n"
        spec = parse_fault_specification(text)
        assert parse_fault_specification(format_fault_specification(spec)) == spec

    def test_comments_and_blank_lines_ignored(self):
        spec = parse_fault_specification("# comment\n\nF1 (A:B) once\n")
        assert len(spec) == 1

    def test_malformed_line_rejected(self):
        with pytest.raises(SpecificationError):
            parse_fault_specification("F1 (A:B)\n")

    def test_bad_trigger_rejected(self):
        with pytest.raises(SpecificationError):
            parse_fault_specification("F1 (A:B) sometimes\n")

    def test_duplicate_fault_names_rejected(self):
        with pytest.raises(SpecificationError):
            parse_fault_specification("F1 (A:B) once\nF1 (A:C) once\n")

    def test_should_fire_edge_semantics(self):
        once = FaultDefinition("f", StateAtom("A", "X"), FaultTrigger.ONCE)
        always = FaultDefinition("g", StateAtom("A", "X"), FaultTrigger.ALWAYS)
        assert once.should_fire(previous=False, current=True, already_fired=False)
        assert not once.should_fire(previous=False, current=True, already_fired=True)
        assert not once.should_fire(previous=True, current=True, already_fired=False)
        assert always.should_fire(previous=False, current=True, already_fired=True)
        assert not always.should_fire(previous=True, current=True, already_fired=True)
        assert not always.should_fire(previous=False, current=False, already_fired=False)


class TestSupportFiles:
    def test_node_file_roundtrip(self):
        text = "black hosta\nyellow hostb\ngreen\n"
        entries = parse_node_file(text)
        assert entries[0] == NodeFileEntry("black", "hosta")
        assert entries[2].host is None
        assert not entries[2].starts_at_beginning
        assert parse_node_file(format_node_file(entries)) == entries

    def test_node_file_duplicate_rejected(self):
        with pytest.raises(SpecificationError):
            parse_node_file("black hosta\nblack hostb\n")

    def test_node_file_too_many_fields_rejected(self):
        with pytest.raises(SpecificationError):
            parse_node_file("black hosta extra\n")

    def test_daemon_startup_file_roundtrip(self):
        entries = parse_daemon_startup_file("hosta 9000\nhostb 9001\n")
        assert entries == (DaemonStartupEntry("hosta", 9000), DaemonStartupEntry("hostb", 9001))
        assert parse_daemon_startup_file(format_daemon_startup_file(entries)) == entries

    def test_daemon_startup_bad_port_rejected(self):
        with pytest.raises(SpecificationError):
            parse_daemon_startup_file("hosta not-a-port\n")

    def test_daemon_contact_file_roundtrip(self):
        entries = parse_daemon_contact_file("hosta 12 13\nhostb 22 23\n")
        assert entries[0] == DaemonContactEntry("hosta", 12, 13)
        assert parse_daemon_contact_file(format_daemon_contact_file(entries)) == entries

    def test_machines_file(self):
        assert parse_machines_file("hosta\nhostb\n# comment\n") == ("hosta", "hostb")
        with pytest.raises(SpecificationError):
            parse_machines_file("hosta\nhosta\n")

    def test_study_file_roundtrip(self):
        study = StudyFile(
            nickname="black",
            node_file="nodes.txt",
            state_machine_specification_file="black.sm",
            fault_specification_file="black.faults",
            executable="/usr/bin/election",
            arguments=("--id", "black"),
        )
        assert parse_study_file(format_study_file(study)) == study

    def test_study_file_without_arguments(self):
        parsed = parse_study_file("black\nnodes\nblack.sm\nblack.f\n/bin/app\n")
        assert parsed.arguments == ()

    def test_study_file_too_short_rejected(self):
        with pytest.raises(SpecificationError):
            parse_study_file("black\nnodes\n")
