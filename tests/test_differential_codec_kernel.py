"""Differential tests: {JSONL, columnar} × {legacy, batched} are one system.

Every registry scenario is run through all four combinations of store
codec (JSONL lines vs columnar blocks) and delivery draw discipline
(legacy per-call ``random()`` vs batched block pre-draw), and each run
must be indistinguishable from the reference combination at every
observable level:

* **timelines** — every recorded experiment payload, compared through the
  canonical dictionary mapping (bit-exact float equality);
* **measures** — the full downstream measure/acceptance/estimate set;
* **store fingerprints** — a digest over the canonical content of every
  stored record, proving the *stores* (not just the in-memory analyses)
  hold identical data whatever codec framed it.

The draw discipline is selected by monkeypatching
``repro.sim.network.DEFAULT_DRAW_CHUNK`` (read at model construction
time), which only reaches models built in this process — so these tests
pin the serial backend; cross-backend identity is covered elsewhere.
"""

from __future__ import annotations

import hashlib
import json

import pytest

import repro.sim.network
from repro.core.campaign import CampaignConfig
from repro.measures.campaign_measures import (
    SimpleSamplingMeasure,
    estimate_campaign_measure,
)
from repro.pipeline import run_and_analyze
from repro.scenarios import DEFAULT_REGISTRY
from repro.store import CampaignStore, result_to_dict

CODECS = ("jsonl", "columnar")

#: Draw disciplines under test: the legacy per-call discipline (chunk 0
#: selects DirectUniformSource) and the batched default.
DISCIPLINES = {"legacy": 0, "batched": repro.sim.network.DEFAULT_DRAW_CHUNK}

EXPERIMENTS = 2
SEED = 17


def campaign_for(scenario_name: str) -> CampaignConfig:
    study = DEFAULT_REGISTRY.build(scenario_name, experiments=EXPERIMENTS, seed=SEED)
    return CampaignConfig(name=f"differential-{scenario_name}", studies=[study])


def measures_of(analysis, scenario_name):
    """Every downstream quantity of a scenario run, in bit-comparable form."""
    scenario = DEFAULT_REGISTRY.get(scenario_name)
    study_name = next(iter(analysis.studies))
    study_analysis = analysis.studies[study_name]
    seeds = [e.result.seed for e in study_analysis.experiments]
    acceptance = analysis.acceptance_summary()
    if scenario.measure_factory is None:
        return acceptance, seeds
    measure = scenario.measure_factory()
    values = study_analysis.measure_values(measure)
    estimate = None
    if any(value is not None for value in values):
        estimate = estimate_campaign_measure(
            SimpleSamplingMeasure("headline"), analysis, {study_name: measure}
        ).to_dict()
    return acceptance, seeds, values, estimate


def store_fingerprint(store: CampaignStore, campaign: CampaignConfig) -> str:
    """SHA-256 over the canonical content of every stored record.

    Hashing the canonical payload dictionaries (not the files) makes the
    digest codec-independent: two stores holding the same experiments in
    different framings fingerprint identically, and any single bit of
    drift in any float of any record changes it.
    """
    digest = hashlib.sha256()
    for study in campaign.studies:
        records = store.load_study_records(study.name)
        for index in sorted(records):
            canonical = json.dumps(
                result_to_dict(records[index]),
                sort_keys=True,
                separators=(",", ":"),
            )
            digest.update(canonical.encode("utf-8"))
    return digest.hexdigest()


def run_combination(scenario_name, directory, codec, chunk):
    """One full store-backed run; returns (measures, timelines, fingerprint)."""
    campaign = campaign_for(scenario_name)
    store = CampaignStore(directory, codec=codec)
    with pytest.MonkeyPatch.context() as patch:
        patch.setattr(repro.sim.network, "DEFAULT_DRAW_CHUNK", chunk)
        with store:
            analysis = run_and_analyze(campaign, store=store)
    timelines = {
        study.name: {
            index: result_to_dict(record)
            for index, record in store.load_study_records(study.name).items()
        }
        for study in campaign.studies
    }
    return (
        measures_of(analysis, scenario_name),
        timelines,
        store_fingerprint(store, campaign),
    )


@pytest.mark.parametrize("scenario_name", DEFAULT_REGISTRY.names())
def test_codec_and_kernel_combinations_are_bit_identical(scenario_name, tmp_path):
    reference = run_combination(
        scenario_name, tmp_path / "reference", "jsonl", DISCIPLINES["legacy"]
    )
    for codec in CODECS:
        for discipline, chunk in DISCIPLINES.items():
            if codec == "jsonl" and discipline == "legacy":
                continue  # that is the reference itself
            candidate = run_combination(
                scenario_name, tmp_path / f"{codec}-{discipline}", codec, chunk
            )
            context = f"{scenario_name}: {codec}×{discipline} vs jsonl×legacy"
            assert candidate[1] == reference[1], f"timelines diverged ({context})"
            assert candidate[0] == reference[0], f"measures diverged ({context})"
            assert candidate[2] == reference[2], f"fingerprints diverged ({context})"


def test_disciplines_draw_identical_variate_sequences():
    """The two disciplines consume the same underlying double sequence.

    This is the micro-level statement of why the differential matrix can
    hold at all: a blocked source hands out exactly the doubles the
    per-call source would, in the same order, leaving the shared stream
    in the same state afterwards.
    """
    from repro.sim.rng import RandomStreams, uniform_source

    direct_stream = RandomStreams(5).stream("network")
    blocked_stream = RandomStreams(5).stream("network")
    direct = uniform_source(direct_stream, chunk=0)
    blocked = uniform_source(blocked_stream, chunk=7)  # deliberately misaligned
    drawn = [(direct.next(), blocked.next()) for _ in range(100)]
    assert all(a == b for a, b in drawn)
    # A fresh same-seed stream confirms neither source skipped a draw:
    # the 101st double is the 101st double of the raw sequence.
    replay = RandomStreams(5).stream("network")
    expected = [replay.random() for _ in range(101)]
    assert [a for a, _ in drawn] == expected[:100]
    assert direct.next() == blocked.next() == expected[100]
