"""Property-based tests for :mod:`repro.measures.statistics`.

The properties run twice: against a deterministic table of seeded random
samples (always, so CI needs no third-party packages), and — when
``hypothesis`` is installed — against hypothesis-generated samples for
broader coverage.  Both paths share the same check functions.

Checked properties:

* moment identities: ``variance == mu2``, ``stdev**2 == variance``,
  ``beta1 == gamma1**2``, ``beta2 == gamma2 + 3``, the clamped moments are
  non-negative, and Pearson's inequality ``beta2 >= beta1 + 1`` holds;
* ``combine_stratified`` of equal-weight strata that each hold the same
  sample agrees with ``summarize_sample`` of the pooled values (the case
  where the paper's independent-strata combination rule and direct pooling
  provably coincide), and is invariant under rescaling the equal weights;
* percentiles are monotone in the probability level (within the
  moderate-skew envelope where the Cornish-Fisher expansion is monotone);
* the summary and its percentiles are equivariant under the affine map
  ``x -> a*x + b`` with ``a > 0``.
"""

from __future__ import annotations

import math
import random

from repro.measures.statistics import combine_stratified, summarize_sample

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ModuleNotFoundError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

#: Probability grid for the monotonicity property (0.05 .. 0.95).
PROBABILITY_GRID = [level / 20.0 for level in range(1, 20)]

#: Cornish-Fisher monotonicity envelope: |gamma1| and |gamma2| bounds under
#: which the expansion's derivative stays positive on the grid above.
SKEW_ENVELOPE = 0.8
KURTOSIS_ENVELOPE = 1.0


def seeded_samples(count: int = 48, max_size: int = 24) -> list[list[float]]:
    """A deterministic table of samples of several distribution shapes."""
    rng = random.Random(0xC0FFEE)
    samples: list[list[float]] = []
    for index in range(count):
        size = rng.randint(2, max_size)
        shape = index % 4
        if shape == 0:
            values = [rng.uniform(-5.0, 5.0) for _ in range(size)]
        elif shape == 1:
            values = [rng.gauss(1.0, 2.0) for _ in range(size)]
        elif shape == 2:
            values = [rng.expovariate(0.8) for _ in range(size)]
        else:
            values = [float(rng.randint(0, 1)) for _ in range(size)]
        samples.append(values)
    return samples


# ---------------------------------------------------------------------------
# Shared check functions
# ---------------------------------------------------------------------------


def check_moment_identities(values: list[float]) -> None:
    summary = summarize_sample(values)
    assert summary.count == len(values)
    assert summary.central_moment_2 >= 0.0
    assert summary.central_moment_4 >= 0.0
    assert summary.variance == summary.central_moment_2
    assert math.isclose(
        summary.standard_deviation**2, summary.variance, rel_tol=1e-9, abs_tol=1e-12
    )
    if summary.central_moment_2**2 > 0.0:
        assert summary.excess_kurtosis == summary.kurtosis_coefficient - 3.0
    else:
        # Degenerate (or underflowing) spread: both coefficients are defined
        # away to zero.
        assert summary.excess_kurtosis == 0.0
        assert summary.kurtosis_coefficient == 0.0
        assert summary.skewness_coefficient == 0.0
    if summary.central_moment_2 > 1e-9:
        assert math.isclose(
            summary.skewness_coefficient,
            summary.skewness**2,
            rel_tol=1e-9,
            abs_tol=1e-12,
        )
        # Pearson's inequality beta2 >= beta1 + 1 holds for every sample.
        assert summary.kurtosis_coefficient + 1e-6 >= summary.skewness_coefficient + 1.0


def check_equal_weight_pooling(values: list[float], strata: int, weight: float) -> None:
    """Equal-weight identical strata == summarize_sample of the pooled values."""
    summaries = {f"stratum-{index}": summarize_sample(values) for index in range(strata)}
    weights = {f"stratum-{index}": weight for index in range(strata)}
    combined = combine_stratified(summaries, weights)
    pooled = summarize_sample(list(values) * strata)
    assert combined.count == pooled.count == strata * len(values)
    assert math.isclose(combined.mean, pooled.mean, rel_tol=1e-9, abs_tol=1e-9)
    assert math.isclose(
        combined.central_moment_2, pooled.central_moment_2, rel_tol=1e-9, abs_tol=1e-8
    )
    assert math.isclose(
        combined.central_moment_3, pooled.central_moment_3, rel_tol=1e-9, abs_tol=1e-8
    )
    assert math.isclose(
        combined.central_moment_4, pooled.central_moment_4, rel_tol=1e-9, abs_tol=1e-8
    )


def in_monotonicity_envelope(values: list[float]) -> bool:
    summary = summarize_sample(values)
    return (
        summary.central_moment_2 > 1e-9
        and abs(summary.skewness) <= SKEW_ENVELOPE
        and abs(summary.excess_kurtosis) <= KURTOSIS_ENVELOPE
    )


def check_percentile_monotone(values: list[float]) -> bool:
    """Percentiles are non-decreasing in the probability level.

    Returns whether the sample was inside the envelope (callers assert the
    property was actually exercised often enough).
    """
    if not in_monotonicity_envelope(values):
        return False
    summary = summarize_sample(values)
    percentiles = [summary.percentile(level) for level in PROBABILITY_GRID]
    for lower, upper in zip(percentiles, percentiles[1:]):
        assert upper >= lower - 1e-9 * (1.0 + abs(lower)), (
            f"percentiles not monotone: {percentiles}"
        )
    return True


def check_affine_equivariance(values: list[float], scale: float, shift: float) -> None:
    """summarize/percentile commute with ``x -> scale * x + shift`` (scale > 0)."""
    base = summarize_sample(values)
    mapped = summarize_sample([scale * value + shift for value in values])
    assert math.isclose(mapped.mean, scale * base.mean + shift, rel_tol=1e-7, abs_tol=1e-7)
    assert math.isclose(
        mapped.variance, scale**2 * base.variance, rel_tol=1e-6, abs_tol=1e-7
    )
    if base.central_moment_2 > 1e-3:
        for level in (0.1, 0.5, 0.9):
            assert math.isclose(
                mapped.percentile(level),
                scale * base.percentile(level) + shift,
                rel_tol=1e-5,
                abs_tol=1e-5,
            )


# ---------------------------------------------------------------------------
# Deterministic seeded-random path (always runs)
# ---------------------------------------------------------------------------


class TestSeededProperties:
    def test_moment_identities(self):
        for values in seeded_samples():
            check_moment_identities(values)

    def test_equal_weight_pooling(self):
        for index, values in enumerate(seeded_samples(count=24)):
            check_equal_weight_pooling(values, strata=2 + index % 3, weight=1.0)
            check_equal_weight_pooling(values, strata=2, weight=2.5)

    def test_percentiles_monotone(self):
        exercised = sum(check_percentile_monotone(values) for values in seeded_samples())
        # The property must actually fire, not be vacuously skipped.
        assert exercised >= 10

    def test_affine_equivariance(self):
        rng = random.Random(0xBEEF)
        for values in seeded_samples(count=24):
            scale = rng.uniform(0.1, 4.0)
            shift = rng.uniform(-5.0, 5.0)
            check_affine_equivariance(values, scale, shift)

    def test_degenerate_sample_percentile_is_mean(self):
        summary = summarize_sample([3.25] * 7)
        assert summary.variance == 0.0
        for level in PROBABILITY_GRID:
            assert summary.percentile(level) == summary.mean


# ---------------------------------------------------------------------------
# Hypothesis path (runs when hypothesis is installed)
# ---------------------------------------------------------------------------


if HAVE_HYPOTHESIS:
    finite_values = st.lists(
        st.floats(min_value=-8.0, max_value=8.0, allow_nan=False, allow_infinity=False),
        min_size=2,
        max_size=30,
    )

    class TestHypothesisProperties:
        @given(values=finite_values)
        @settings(max_examples=80, deadline=None)
        def test_moment_identities(self, values):
            check_moment_identities(values)

        @given(values=finite_values, strata=st.integers(min_value=2, max_value=5))
        @settings(max_examples=60, deadline=None)
        def test_equal_weight_pooling(self, values, strata):
            check_equal_weight_pooling(values, strata=strata, weight=1.0)

        @given(values=finite_values)
        @settings(max_examples=80, deadline=None)
        def test_percentiles_monotone(self, values):
            check_percentile_monotone(values)

        @given(
            values=finite_values,
            scale=st.floats(min_value=0.1, max_value=4.0),
            shift=st.floats(min_value=-5.0, max_value=5.0),
        )
        @settings(max_examples=60, deadline=None)
        def test_affine_equivariance(self, values, scale, shift):
            check_affine_equivariance(values, scale, shift)
