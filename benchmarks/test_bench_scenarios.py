"""SCENARIOS: cross-scenario campaign comparison over the scenario registry.

Enumerates every scenario of ``repro.scenarios.DEFAULT_REGISTRY`` — the
three paper applications plus the two-phase-commit and token-ring
workloads in correlated and uncorrelated fault variants — runs a small
campaign per scenario, and prints the injection-probability and study
measure estimates side by side.  The pytest-benchmark fixture times one
single-experiment scenario campaign.
"""

from __future__ import annotations

from conftest import print_table
from repro.experiments import scenario_comparison
from repro.scenarios import default_registry

EXPERIMENTS = 2
SEED = 7


def test_bench_scenario_comparison(benchmark):
    """Run every registered scenario and print the comparison table."""
    registry = default_registry()
    rows = scenario_comparison(experiments=EXPERIMENTS, seed=SEED)
    assert len(rows) == len(registry)
    assert all(row.experiments == EXPERIMENTS for row in rows)

    benchmark(scenario_comparison, names=("toggle",), experiments=1, seed=1)

    print_table(
        f"Scenario registry — {len(rows)} scenarios, {EXPERIMENTS} experiments each",
        ["scenario", "accepted", "injections", "correct fraction", "measure", "mean"],
        [
            [
                row.scenario,
                f"{row.accepted}/{row.experiments}",
                str(row.injections),
                f"{row.correct_fraction:.2f}" if row.correct_fraction is not None else "n/a",
                row.measure_name or "n/a",
                f"{row.measure_mean:.4f}" if row.measure_mean is not None else "n/a",
            ]
            for row in rows
        ],
    )
