"""EXEC-ENGINE: wall-clock speedup of the process-pool campaign backend.

Runs the same 200-experiment, four-study campaign through the serial and
the four-worker process-pool execution backends, checks that both produce
identical per-experiment seeds and acceptance summaries (the engine's
bit-identity contract), and reports the wall-clock speedup.  The >= 2x
speedup assertion only applies when the machine actually exposes at least
four usable CPUs — on smaller machines the benchmark still verifies
equivalence and prints the measured ratio.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table, usable_cpus
from repro.apps.toggle import build_toggle_study
from repro.core.campaign import CampaignConfig
from repro.core.execution import PROCESS_POOL, ExecutionConfig, available_backends
from repro.pipeline import run_and_analyze

STUDIES = 4
EXPERIMENTS_PER_STUDY = 50  # 200 experiments total
WORKERS = 4


def build_campaign() -> CampaignConfig:
    studies = [
        build_toggle_study(
            name=f"dwell-{index}",
            dwell_time=0.010 + 0.005 * index,
            timeslice=0.005,
            cycles=3,
            experiments=EXPERIMENTS_PER_STUDY,
            seed=100 + index,
        )
        for index in range(STUDIES)
    ]
    return CampaignConfig(name="execution-bench", studies=studies)


def seeds_of(analysis) -> dict[str, list[int]]:
    return {
        name: [experiment.result.seed for experiment in study.experiments]
        for name, study in analysis.studies.items()
    }


@pytest.mark.skipif(
    PROCESS_POOL not in available_backends(),
    reason="process-pool backend needs the fork start method",
)
def test_bench_execution_speedup():
    """Serial vs 4-worker pool on a 200-experiment campaign."""
    campaign = build_campaign()

    start = time.perf_counter()
    serial = run_and_analyze(campaign, ExecutionConfig.serial())
    serial_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    pooled = run_and_analyze(
        campaign, ExecutionConfig.process_pool(workers=WORKERS, chunk_size=5)
    )
    pooled_elapsed = time.perf_counter() - start

    # The engine's contract: the backend cannot change any result.
    assert seeds_of(serial) == seeds_of(pooled)
    assert serial.acceptance_summary() == pooled.acceptance_summary()

    speedup = serial_elapsed / pooled_elapsed if pooled_elapsed > 0 else float("inf")
    experiments = STUDIES * EXPERIMENTS_PER_STUDY
    print_table(
        f"Execution engine — {experiments} experiments, {WORKERS} workers "
        f"({usable_cpus()} usable CPUs)",
        ["backend", "wall clock", "experiments/s"],
        [
            ["serial", f"{serial_elapsed:.2f} s", f"{experiments / serial_elapsed:.1f}"],
            ["process-pool", f"{pooled_elapsed:.2f} s", f"{experiments / pooled_elapsed:.1f}"],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
    )

    if usable_cpus() >= WORKERS:
        assert speedup >= 2.0, (
            f"expected >= 2x speedup with {WORKERS} workers on "
            f"{usable_cpus()} CPUs, measured {speedup:.2f}x"
        )
