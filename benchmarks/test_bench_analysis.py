"""ANALYSIS-PHASE: old (LP + scalar projection) vs new (geometric + vectorized).

The analysis phase — clock-bound estimation plus global-timeline
construction — is the per-experiment bottleneck of a fused campaign.  This
bench runs both the pre-optimization implementation (four scipy linear
programs per machine, O(n^3) pairwise vertex enumeration, per-record
Python projection loop — reproduced faithfully below and cross-checked via
``estimate_clock_bounds_lp``) and the live implementation (exact geometric
envelope solver, single-pass message bucketing, numpy-broadcast
projection) on the same four-host experiment data, verifies they agree,
records both timings plus the speedup factor in ``BENCH_analysis.json``,
and asserts the required >= 5x improvement.
"""

from __future__ import annotations

import random
import time

import pytest

from bench_record import record_benchmark, record_speedup
from conftest import print_table, round_trip_messages, usable_cpus
from repro.analysis.clock_sync import (
    SyncMessageRecord,
    estimate_all_bounds,
    estimate_clock_bounds_lp,
)
from repro.analysis.global_timeline import build_global_timeline
from repro.core.timeline import LocalTimeline
from repro.sim.clock import ClockParameters, HardwareClock

#: Four hosts: the reference plus three drifting machines (the issue's
#: "4-host scenario" shape: e.g. the three-machine election app plus ref).
HOSTS = ("ref", "hosta", "hostb", "hostc")
MESSAGES_PER_PHASE = 25
RECORDS_PER_MACHINE = 60
REPEATS_NEW = 20
REPEATS_LEGACY = 3


def build_four_host_experiment(
    seed: int = 7,
) -> tuple[list[SyncMessageRecord], dict[str, LocalTimeline]]:
    """Synthesize one four-host experiment's analysis-phase inputs."""
    rng = random.Random(seed)
    clocks = {"ref": HardwareClock(ClockParameters(offset=0.0, rate=1.0))}
    for host in HOSTS[1:]:
        clocks[host] = HardwareClock(
            ClockParameters(
                offset=rng.uniform(-0.005, 0.005),
                rate=1.0 + rng.uniform(-100, 100) * 1e-6,
            )
        )
    messages: list[SyncMessageRecord] = []
    for host in HOSTS[1:]:
        messages.extend(
            round_trip_messages(
                clocks["ref"],
                clocks[host],
                rng,
                other=host,
                phases=(0.0, 2.0),
                count=MESSAGES_PER_PHASE,
                delay=150e-6,
            )
        )
    timelines: dict[str, LocalTimeline] = {}
    for host in HOSTS:
        timeline = LocalTimeline(machine=f"machine-{host}")
        for index in range(RECORDS_PER_MACHINE):
            physical = 0.5 + index * (1.0 / RECORDS_PER_MACHINE)
            local = clocks[host].read(physical)
            if index % 10 == 9:
                timeline.add_fault_injection("fault", local, host)
            else:
                timeline.add_state_change(
                    f"event{index % 3}", f"state{index % 3}", local, host
                )
        timelines[host] = timeline
    return messages, timelines


# -- the pre-optimization implementation, reproduced faithfully ---------------


def legacy_estimate_all_bounds(messages, machines, reference):
    """Per-machine full-list rescan through the scipy LP path."""
    message_list = list(messages)
    return {
        machine: estimate_clock_bounds_lp(message_list, machine, reference)
        for machine in machines
    }


def legacy_project(bounds, local_time):
    """The historical scalar corner loop of ``project_to_reference``."""
    if bounds.vertices:
        corners = bounds.vertices
    else:
        corners = tuple(
            (alpha, beta)
            for alpha in (bounds.alpha_lower, bounds.alpha_upper)
            for beta in (bounds.beta_lower, bounds.beta_upper)
        )
    candidates = [(local_time - alpha) / beta for alpha, beta in corners]
    return min(candidates), max(candidates)


def legacy_analysis_phase(messages, timelines):
    bounds = legacy_estimate_all_bounds(messages, HOSTS, "ref")
    projected = []
    for timeline in timelines.values():
        for record in timeline.records:
            projected.append(legacy_project(bounds[record.host], record.time))
    return bounds, projected


def current_analysis_phase(messages, timelines):
    bounds = estimate_all_bounds(messages, HOSTS, "ref")
    return bounds, build_global_timeline(timelines, bounds)


def test_bench_analysis_phase_speedup():
    """Clock-sync + global-timeline: new implementation vs pre-PR baseline."""
    messages, timelines = build_four_host_experiment()

    start = time.perf_counter()
    for _ in range(REPEATS_NEW):
        bounds, timeline = current_analysis_phase(messages, timelines)
    new_elapsed = (time.perf_counter() - start) / REPEATS_NEW

    start = time.perf_counter()
    for _ in range(REPEATS_LEGACY):
        legacy_bounds, legacy_projected = legacy_analysis_phase(messages, timelines)
    legacy_elapsed = (time.perf_counter() - start) / REPEATS_LEGACY

    # Both implementations must agree before their timings are comparable.
    for host in HOSTS:
        assert bounds[host].alpha_lower == pytest.approx(
            legacy_bounds[host].alpha_lower, abs=1e-9
        )
        assert bounds[host].beta_upper == pytest.approx(
            legacy_bounds[host].beta_upper, abs=1e-9
        )
    assert len(timeline.entries) == len(legacy_projected)

    speedup = legacy_elapsed / new_elapsed if new_elapsed > 0 else float("inf")
    record_benchmark("analysis_phase_legacy_lp", legacy_elapsed, REPEATS_LEGACY)
    record_benchmark("analysis_phase_geometric", new_elapsed, REPEATS_NEW)
    record_speedup("analysis_phase_speedup", speedup, REPEATS_LEGACY)
    print_table(
        f"Analysis phase — {len(HOSTS)} hosts, "
        f"{len(messages)} sync messages, "
        f"{sum(len(t.records) for t in timelines.values())} timeline records",
        ["implementation", "per-experiment", "speedup"],
        [
            ["legacy (scipy LP + scalar loop)", f"{legacy_elapsed * 1e3:.2f} ms", ""],
            ["geometric + vectorized", f"{new_elapsed * 1e3:.2f} ms", f"{speedup:.1f}x"],
        ],
    )

    if usable_cpus() >= 2:
        assert speedup >= 5.0, (
            f"expected the analysis phase to be >= 5x faster than the "
            f"pre-optimization implementation, measured {speedup:.1f}x"
        )


def test_bench_analysis_phase_fixture(benchmark):
    """pytest-benchmark timing of the live analysis phase (trajectory entry)."""
    messages, timelines = build_four_host_experiment()
    benchmark(current_analysis_phase, messages, timelines)
