"""CH5-CORR: the Chapter 5 error-correlation evaluation (studies 4-5).

Study 4 injects a fault into a follower at the moment the leader crashes
(``gfault2``); study 5 injects the same kind of fault with no leader crash
(``gfault3``).  The fraction of faults that become errors in each study
exposes the correlation between a leader crash and simultaneous errors in
other processes; the workload's configured probabilities are the ground
truth.
"""

import pytest

from conftest import print_table
from repro.experiments import chapter5_correlation_evaluation

CORRELATED = 0.8
UNCORRELATED = 0.25


@pytest.fixture(scope="module")
def evaluation():
    return chapter5_correlation_evaluation(
        experiments=10,
        correlated_probability=CORRELATED,
        uncorrelated_probability=UNCORRELATED,
        seed=51,
    )


def test_bench_chapter5_correlation(benchmark, evaluation):
    """Time a one-experiment correlation campaign and print the evaluation."""
    benchmark(
        chapter5_correlation_evaluation,
        experiments=1,
        correlated_probability=CORRELATED,
        uncorrelated_probability=UNCORRELATED,
        seed=1,
    )
    print_table(
        "Chapter 5, evaluation 2 — leader-crash / follower-error correlation",
        ["condition", "errors/injections (measured)", "configured"],
        [
            ["leader crashed (study 4, gfault2)",
             f"{evaluation.correlated_error_fraction:.2f}", f"{CORRELATED:.2f}"],
            ["no leader crash (study 5, gfault3)",
             f"{evaluation.uncorrelated_error_fraction:.2f}", f"{UNCORRELATED:.2f}"],
        ],
    )


def test_correlation_direction_matches_configuration(evaluation):
    assert evaluation.correlated_error_fraction > evaluation.uncorrelated_error_fraction


def test_experiments_accepted(evaluation):
    for study, (accepted, total) in evaluation.accepted.items():
        assert accepted >= total // 2, study
