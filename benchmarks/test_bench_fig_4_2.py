"""FIG-4.2: the worked measure-language example of Section 4.3.

The paper gives an example global timeline, three predicates, and the
values of three observation functions applied to each predicate value
timeline.  This bench evaluates the same predicates and observation
functions on the transcribed timeline and prints paper-vs-measured values.
"""

import pytest

from conftest import print_table
from repro.paper_data import (
    FIGURE_4_2_PAPER_VALUES,
    figure_4_2_observation_functions,
    figure_4_2_predicates,
    figure_4_2_view,
)

LABELS = ("count(U, B, 10, 35)", "duration(T, 2, 10, 40)", "instant(U, I, 2, 0, 50)")


@pytest.fixture(scope="module")
def measured():
    view = figure_4_2_view()
    predicates = figure_4_2_predicates()
    observations = figure_4_2_observation_functions()
    values = {}
    for label, observation in zip(LABELS, observations):
        values[label] = tuple(
            observation(predicate.evaluate(view)) for predicate in predicates
        )
    return values


def test_bench_figure_4_2(benchmark, measured):
    """Time the full predicate-evaluation + observation pipeline."""

    def evaluate_all():
        view = figure_4_2_view()
        return [
            observation(predicate.evaluate(view))
            for observation in figure_4_2_observation_functions()
            for predicate in figure_4_2_predicates()
        ]

    benchmark(evaluate_all)
    rows = []
    for label in LABELS:
        paper = FIGURE_4_2_PAPER_VALUES[label]
        ours = measured[label]
        for index in range(3):
            rows.append(
                [label, f"predicate {index + 1}", f"{paper[index]:g}", f"{ours[index]:g}"]
            )
    print_table(
        "Figure 4.2 — observation function values (paper vs measured)",
        ["observation function", "predicate", "paper", "measured"],
        rows,
    )


def test_values_match_paper(measured):
    for label in LABELS:
        for paper_value, ours in zip(FIGURE_4_2_PAPER_VALUES[label], measured[label]):
            assert ours == pytest.approx(paper_value, abs=0.11)
