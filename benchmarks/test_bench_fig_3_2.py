"""FIG-3.2: correct fault-injection probability vs. time in state, 10 ms timeslice.

The paper's Figure 3.2 shows that with the stock 10 ms Linux timeslice the
original Loki runtime injects faults in the intended global state with high
probability once the application stays in that state for more than a couple
of OS timeslices, and with low probability below one timeslice.  The bench
sweeps the dwell time and reports the measured probability curve.
"""

import pytest

from conftest import print_table
from repro.experiments import injection_probability_sweep

TIMESLICE = 0.010
DWELL_TIMES = (0.002, 0.005, 0.010, 0.020, 0.030, 0.050)


@pytest.fixture(scope="module")
def sweep():
    return injection_probability_sweep(
        timeslice=TIMESLICE, dwell_times=DWELL_TIMES, experiments=3, cycles=8, seed=32
    )


def test_bench_figure_3_2(benchmark, sweep):
    """Regenerate Figure 3.2 and time one data point of the sweep."""
    benchmark(
        injection_probability_sweep,
        timeslice=TIMESLICE,
        dwell_times=(0.020,),
        experiments=1,
        cycles=4,
        seed=1,
    )
    rows = [
        [f"{point.dwell_time * 1000:.0f} ms",
         f"{point.dwell_time / TIMESLICE:.1f}",
         point.injections,
         "n/a" if point.probability is None else f"{point.probability:.2f}"]
        for point in sweep
    ]
    print_table(
        "Figure 3.2 — correct injection probability (10 ms timeslice)",
        ["time in state", "timeslices", "injections", "P(correct)"],
        rows,
    )


def test_shape_matches_paper(sweep):
    """Shape check: low below one timeslice, saturated above a couple."""
    by_dwell = {point.dwell_time: point.probability for point in sweep}
    assert by_dwell[0.002] < 0.6
    assert by_dwell[0.050] > 0.75
    assert by_dwell[0.050] >= by_dwell[0.005]
    assert by_dwell[0.002] < by_dwell[0.050]
