"""CAMPAIGN STORE: persistence overhead, re-analysis, and codec throughput.

Three questions:

1. What does attaching a ``CampaignStore`` cost the live pipeline?
   (``store_backed_campaign`` vs the plain fused run — the delta is the
   record encoding plus the append I/O.)
2. How fast is the run-once/analyze-many path — the analysis phase re-run
   purely from archived records, zero simulator invocations?
   (``analysis_phase_store_backed``: recorded under its own distinct
   trajectory name via ``extra_info`` so it never collides with the
   in-memory ``analysis_phase_*`` entries in ``BENCH_analysis.json``.)
3. What does archiving cost at campaign scale?  The codec bench streams a
   synthetic study holding **one million timeline records** through the
   columnar store and reads every record back
   (``store_roundtrip_1m_records``), with the JSONL codec timed on a
   sample of the same payload for the comparison table.

Correctness is asserted before timings are recorded: the store-loaded
analysis must be bit-identical to the live one, and the bulk round trip
must return every record.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from random import Random

from conftest import print_table
from repro.analysis.clock_sync import SyncMessageRecord
from repro.core.campaign import CampaignConfig, ExperimentResult
from repro.core.specs.fault_spec import FaultSpecification
from repro.core.timeline import LocalTimeline
from repro.apps.toggle import build_toggle_study
from repro.pipeline import run_and_analyze
from repro.sim.clock import ClockParameters
from repro.store import CampaignStore

EXPERIMENTS = 6

#: The bulk round trip: this many experiments of this many records each.
BULK_EXPERIMENTS = 10
BULK_RECORDS_EACH = 100_000


def build_campaign() -> CampaignConfig:
    study = build_toggle_study(
        "bench-store", dwell_time=0.02, timeslice=0.002, cycles=3,
        experiments=EXPERIMENTS, seed=42,
    )
    return CampaignConfig(name="bench-store-campaign", studies=[study])


def analysis_fingerprint(analysis) -> dict:
    study = analysis.study("bench-store")
    return {
        "seeds": [e.result.seed for e in study.experiments],
        "accepted": [e.accepted for e in study.experiments],
        "timeline_sizes": [len(e.global_timeline.entries) for e in study.experiments],
    }


def test_bench_store_backed_campaign(benchmark, tmp_path_factory):
    """Fused run with persistence: simulate + analyze + stream to disk."""
    campaign = build_campaign()

    def run_with_store():
        directory = Path(tempfile.mkdtemp(dir=tmp_path_factory.getbasetemp()))
        try:
            return run_and_analyze(campaign, store=CampaignStore(directory / "c"))
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    analysis = benchmark(run_with_store)
    assert len(analysis.study("bench-store").experiments) == EXPERIMENTS


def test_bench_store_reanalysis(benchmark, tmp_path):
    """The analyze-many path: analysis phase from archived records only."""
    campaign = build_campaign()
    store = CampaignStore(tmp_path / "c")
    live = run_and_analyze(campaign, store=store)

    loaded = store.load_analysis(campaign)
    assert analysis_fingerprint(loaded) == analysis_fingerprint(live)

    benchmark.extra_info["trajectory_name"] = "analysis_phase_store_backed"
    benchmark(store.load_analysis, campaign)


# ---------------------------------------------------------------------------
# Codec throughput at campaign scale
# ---------------------------------------------------------------------------


def bulk_result(index: int, records: int = BULK_RECORDS_EACH) -> ExperimentResult:
    """One synthetic experiment whose timeline holds ``records`` rows."""
    rng = Random(index)
    timeline = LocalTimeline(
        machine="m0",
        state_machines=("m0",),
        global_states=("UP", "READY"),
        events=("go",),
        faults=FaultSpecification.from_definitions([]),
    )
    now = 0.0
    for _ in range(records):
        now += rng.random() * 1e-3
        timeline.add_state_change("go", "UP", now, "h0")
    return ExperimentResult(
        study="bulk",
        index=index,
        seed=index,
        local_timelines={"m0": timeline},
        sync_messages=[SyncMessageRecord("h0", "h1", 0.1, 0.2)],
        hosts=("h0", "h1"),
        reference_host="h0",
        host_clock_parameters={"h0": ClockParameters(0.0, 1.0, 0.0)},
        completed=True,
        aborted=False,
        abort_reason=None,
        duration=now,
        stats={},
    )


def roundtrip(directory: Path, codec: str, results: list[ExperimentResult]) -> int:
    """Write ``results`` through ``codec`` and read every record back."""
    store = CampaignStore(directory, codec=codec)
    with store:
        for result in results:
            store.append(result)
    loaded = store.load_study_records("bulk")
    return sum(
        len(timeline.records)
        for result in loaded.values()
        for timeline in result.local_timelines.values()
    )


def test_bench_store_roundtrip_1m_records(benchmark, tmp_path):
    """One million records through the columnar codec and back."""
    results = [bulk_result(index) for index in range(BULK_EXPERIMENTS)]
    total = BULK_EXPERIMENTS * BULK_RECORDS_EACH

    # Context: the JSONL codec on a fifth of the payload (full scale would
    # dominate the bench session), plus on-disk sizes for both.
    sample = results[: BULK_EXPERIMENTS // 5]
    start = time.perf_counter()
    assert roundtrip(tmp_path / "jsonl", "jsonl", sample) == (
        len(sample) * BULK_RECORDS_EACH
    )
    jsonl_elapsed = time.perf_counter() - start
    jsonl_bytes = sum(
        path.stat().st_size for path in (tmp_path / "jsonl" / "records").iterdir()
    )

    rounds = 0

    def columnar_roundtrip() -> int:
        nonlocal rounds
        rounds += 1
        directory = tmp_path / f"columnar-{rounds}"
        count = roundtrip(directory, "columnar", results)
        if rounds > 1:  # keep one copy for the size row
            shutil.rmtree(directory, ignore_errors=True)
        return count

    benchmark.extra_info["trajectory_name"] = "store_roundtrip_1m_records"
    # A single 1M-record round trip takes seconds: pedantic with a few
    # rounds keeps the bench session affordable at full scale.
    counted = benchmark.pedantic(columnar_roundtrip, rounds=3, iterations=1)
    assert counted == total

    columnar_bytes = sum(
        path.stat().st_size for path in (tmp_path / "columnar-1" / "records").iterdir()
    )
    mean = benchmark.stats.stats.mean
    print_table(
        f"Store round trip — {total} timeline records",
        ["codec", "records", "round trip", "throughput", "bytes on disk"],
        [
            [
                "columnar",
                str(total),
                f"{mean:.2f} s",
                f"{total / mean / 1e6:.2f}M rec/s",
                str(columnar_bytes),
            ],
            [
                f"jsonl ({len(sample)}/{BULK_EXPERIMENTS} sample)",
                str(len(sample) * BULK_RECORDS_EACH),
                f"{jsonl_elapsed:.2f} s",
                f"{len(sample) * BULK_RECORDS_EACH / jsonl_elapsed / 1e6:.2f}M rec/s",
                str(jsonl_bytes),
            ],
        ],
    )
