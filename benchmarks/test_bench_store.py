"""CAMPAIGN STORE: persistence overhead and store-backed re-analysis.

Two questions, answered on the same small toggle campaign:

1. What does attaching a ``CampaignStore`` cost the live pipeline?
   (``store_backed_campaign`` vs the plain fused run — the delta is the
   record encoding plus the append I/O.)
2. How fast is the run-once/analyze-many path — the analysis phase re-run
   purely from archived records, zero simulator invocations?
   (``analysis_phase_store_backed``: recorded under its own distinct
   trajectory name via ``extra_info`` so it never collides with the
   in-memory ``analysis_phase_*`` entries in ``BENCH_analysis.json``.)

Correctness is asserted before timings are recorded: the store-loaded
analysis must be bit-identical to the live one.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.apps.toggle import build_toggle_study
from repro.core.campaign import CampaignConfig
from repro.pipeline import run_and_analyze
from repro.store import CampaignStore

EXPERIMENTS = 6


def build_campaign() -> CampaignConfig:
    study = build_toggle_study(
        "bench-store", dwell_time=0.02, timeslice=0.002, cycles=3,
        experiments=EXPERIMENTS, seed=42,
    )
    return CampaignConfig(name="bench-store-campaign", studies=[study])


def analysis_fingerprint(analysis) -> dict:
    study = analysis.study("bench-store")
    return {
        "seeds": [e.result.seed for e in study.experiments],
        "accepted": [e.accepted for e in study.experiments],
        "timeline_sizes": [len(e.global_timeline.entries) for e in study.experiments],
    }


def test_bench_store_backed_campaign(benchmark, tmp_path_factory):
    """Fused run with persistence: simulate + analyze + stream to disk."""
    campaign = build_campaign()

    def run_with_store():
        directory = Path(tempfile.mkdtemp(dir=tmp_path_factory.getbasetemp()))
        try:
            return run_and_analyze(campaign, store=CampaignStore(directory / "c"))
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    analysis = benchmark(run_with_store)
    assert len(analysis.study("bench-store").experiments) == EXPERIMENTS


def test_bench_store_reanalysis(benchmark, tmp_path):
    """The analyze-many path: analysis phase from archived records only."""
    campaign = build_campaign()
    store = CampaignStore(tmp_path / "c")
    live = run_and_analyze(campaign, store=store)

    loaded = store.load_analysis(campaign)
    assert analysis_fingerprint(loaded) == analysis_fingerprint(live)

    benchmark.extra_info["trajectory_name"] = "analysis_phase_store_backed"
    benchmark(store.load_analysis, campaign)
