"""TAB-3.4: quantitative version of the Section 3.4 design-choice comparison.

The paper compares the centralized, partially distributed, and fully
distributed daemon placements (with notifications routed through daemons or
sent directly) qualitatively.  This bench runs the same workload under all
six combinations and reports injection accuracy and message/connection
costs.
"""

import pytest

from conftest import print_table
from repro.experiments import design_comparison


@pytest.fixture(scope="module")
def rows():
    return design_comparison(dwell_time=0.020, timeslice=0.005, experiments=2, seed=17)


def test_bench_design_choices(benchmark, rows):
    """Time one design's workload and print the full comparison table."""
    benchmark(design_comparison, dwell_time=0.020, timeslice=0.005, experiments=1, seed=1)
    print_table(
        "Section 3.4 — runtime design comparison",
        ["design", "P(correct)", "notif msgs", "daemon fwds", "conn setups"],
        [
            [row.design,
             "n/a" if row.correct_fraction is None else f"{row.correct_fraction:.2f}",
             row.notification_messages,
             row.daemon_forwards, row.connection_setups]
            for row in rows
        ],
    )


def test_all_designs_inject_correctly(rows):
    """Every design achieves usable injection accuracy on this workload."""
    for row in rows:
        assert row.correct_fraction is not None, row.design
        assert row.correct_fraction > 0.4, row.design


def test_via_daemon_designs_route_through_daemons(rows):
    by_design = {row.design: row for row in rows}
    assert by_design["partially_distributed/via_daemon"].daemon_forwards > 0
    assert by_design["partially_distributed/direct"].daemon_forwards == 0
