"""CLK-SYNC: tightness of the offline clock-synchronization bounds (Section 2.5).

The paper reports that on a LAN the difference between the lower and upper
global-time bounds of an event is "quite small".  This bench sweeps the
number of synchronization messages per mini-phase and reports the achieved
offset/drift bound widths and the mean per-event uncertainty on the global
timeline.
"""

import random
import time

import pytest

from bench_record import record_speedup
from conftest import print_table, round_trip_messages, usable_cpus
from repro.analysis.clock_sync import (
    SyncMessageRecord,
    estimate_clock_bounds,
    estimate_clock_bounds_lp,
)
from repro.experiments import clock_sync_quality
from repro.sim.clock import ClockParameters, HardwareClock


@pytest.fixture(scope="module")
def quality():
    return clock_sync_quality(message_counts=(5, 10, 25, 50), seed=8)


def test_bench_clock_sync(benchmark, quality):
    """Time a small sweep and print the bound-width table."""
    benchmark(clock_sync_quality, message_counts=(10,), seed=1)
    print_table(
        "Section 2.5 — clock-synchronization bound tightness",
        ["msgs/phase", "mean alpha width (us)", "mean beta width", "mean event uncertainty (us)"],
        [
            [q.messages_per_phase,
             f"{q.mean_alpha_width * 1e6:.1f}",
             f"{q.mean_beta_width:.2e}",
             f"{q.mean_event_uncertainty * 1e6:.1f}"]
            for q in quality
        ],
    )


def test_event_uncertainty_is_sub_millisecond(quality):
    """On the simulated LAN the per-event uncertainty stays well below 1 ms."""
    for q in quality:
        assert q.mean_event_uncertainty < 0.001


def test_more_messages_do_not_hurt(quality):
    assert quality[-1].mean_alpha_width <= quality[0].mean_alpha_width * 1.5


def make_200_message_set(seed: int = 5) -> list[SyncMessageRecord]:
    """A 200-message bidirectional constraint set between two hosts."""
    reference = HardwareClock(ClockParameters(offset=0.0, rate=1.0))
    other = HardwareClock(ClockParameters(offset=0.002, rate=1.00004))
    # 50 round trips per mini-phase, 2 phases, 2 messages each = 200.
    return round_trip_messages(reference, other, random.Random(seed), count=50)


@pytest.mark.skipif(
    usable_cpus() < 2,
    reason="solver comparison timings are unreliable on single-CPU machines",
)
def test_geometric_solver_beats_scipy_lp():
    """The exact geometric solver is >= 3x faster than the LP cross-check."""
    messages = make_200_message_set()

    start = time.perf_counter()
    for _ in range(20):
        geometric = estimate_clock_bounds(messages, "other", "ref")
    geometric_elapsed = (time.perf_counter() - start) / 20

    start = time.perf_counter()
    for _ in range(3):
        lp = estimate_clock_bounds_lp(messages, "other", "ref")
    lp_elapsed = (time.perf_counter() - start) / 3

    # Same answer first, then the timing claim.
    assert geometric.alpha_lower == pytest.approx(lp.alpha_lower, abs=1e-9)
    assert geometric.alpha_upper == pytest.approx(lp.alpha_upper, abs=1e-9)
    assert geometric.beta_lower == pytest.approx(lp.beta_lower, abs=1e-9)
    assert geometric.beta_upper == pytest.approx(lp.beta_upper, abs=1e-9)

    speedup = lp_elapsed / geometric_elapsed if geometric_elapsed > 0 else float("inf")
    record_speedup("clock_sync_solver_speedup_200msgs", speedup, 20)
    print_table(
        "Clock-sync solver — 200-message constraint set",
        ["solver", "per solve", "speedup"],
        [
            ["scipy LP (4 x linprog + pairwise vertices)", f"{lp_elapsed * 1e3:.2f} ms", ""],
            ["geometric envelope", f"{geometric_elapsed * 1e3:.3f} ms", f"{speedup:.0f}x"],
        ],
    )
    assert speedup >= 3.0, (
        f"expected the geometric solver to be >= 3x faster than the scipy LP "
        f"path on 200 messages, measured {speedup:.1f}x"
    )
