"""CLK-SYNC: tightness of the offline clock-synchronization bounds (Section 2.5).

The paper reports that on a LAN the difference between the lower and upper
global-time bounds of an event is "quite small".  This bench sweeps the
number of synchronization messages per mini-phase and reports the achieved
offset/drift bound widths and the mean per-event uncertainty on the global
timeline.
"""

import pytest

from conftest import print_table
from repro.experiments import clock_sync_quality


@pytest.fixture(scope="module")
def quality():
    return clock_sync_quality(message_counts=(5, 10, 25, 50), seed=8)


def test_bench_clock_sync(benchmark, quality):
    """Time a small sweep and print the bound-width table."""
    benchmark(clock_sync_quality, message_counts=(10,), seed=1)
    print_table(
        "Section 2.5 — clock-synchronization bound tightness",
        ["msgs/phase", "mean alpha width (us)", "mean beta width", "mean event uncertainty (us)"],
        [
            [q.messages_per_phase,
             f"{q.mean_alpha_width * 1e6:.1f}",
             f"{q.mean_beta_width:.2e}",
             f"{q.mean_event_uncertainty * 1e6:.1f}"]
            for q in quality
        ],
    )


def test_event_uncertainty_is_sub_millisecond(quality):
    """On the simulated LAN the per-event uncertainty stays well below 1 ms."""
    for q in quality:
        assert q.mean_event_uncertainty < 0.001


def test_more_messages_do_not_hurt(quality):
    assert quality[-1].mean_alpha_width <= quality[0].mean_alpha_width * 1.5
