"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one figure or evaluation of the paper
and prints the series it produces (paper-vs-measured shape comparisons are
recorded in EXPERIMENTS.md).  The pytest-benchmark fixture times the
representative computation of each artifact, and the session-finish hook
below writes every fixture timing into the machine-readable trajectory
file ``BENCH_analysis.json`` (see ``bench_record.py``) so each PR leaves a
comparable perf record.
"""

from __future__ import annotations

import os

from bench_record import record_benchmarks


def usable_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def round_trip_messages(
    reference_clock,
    other_clock,
    rng,
    *,
    reference: str = "ref",
    other: str = "other",
    phases=(0.0, 1.0),
    count: int = 50,
    delay: float = 200e-6,
    jitter: float = 50e-6,
):
    """Bidirectional getstamps round trips between two clocked hosts.

    The shared generator for every bench that needs a synthetic sync-phase
    message set: ``count`` round trips (two messages each) per mini-phase.
    """
    from repro.analysis.clock_sync import SyncMessageRecord

    messages = []
    for phase_start in phases:
        for index in range(count):
            send = phase_start + index * 0.001
            receive = send + delay + rng.random() * jitter
            messages.append(
                SyncMessageRecord(
                    reference, other,
                    reference_clock.read(send), other_clock.read(receive),
                )
            )
            send += 0.0005
            receive = send + delay + rng.random() * jitter
            messages.append(
                SyncMessageRecord(
                    other, reference,
                    other_clock.read(send), reference_clock.read(receive),
                )
            )
    return messages


def _trajectory_name(bench) -> str:
    """The name a benchmark's trajectory entry is recorded under.

    Defaults to the pytest fullname.  A benchmark can claim a stable,
    distinct name by setting ``benchmark.extra_info["trajectory_name"]`` —
    used e.g. by the store-backed analysis bench so its entry never
    collides with (or overwrites) the in-memory analysis-phase entries and
    the trajectory stays comparable entry-by-entry across PRs.
    """
    extra = getattr(bench, "extra_info", None) or {}
    return extra.get("trajectory_name", bench.fullname)


def pytest_sessionfinish(session, exitstatus):
    """Record every pytest-benchmark timing into ``BENCH_analysis.json``."""
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:  # pytest-benchmark absent or disabled
        return
    record_benchmarks(
        (_trajectory_name(bench), stats.mean, stats.rounds)
        for bench in getattr(bench_session, "benchmarks", [])
        if (stats := getattr(bench, "stats", None))
    )


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Print a small fixed-width table under a title banner."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(header)
              for i, header in enumerate(headers)]
    print("  ".join(str(header).ljust(width) for header, width in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
