"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one figure or evaluation of the paper
and prints the series it produces (paper-vs-measured shape comparisons are
recorded in EXPERIMENTS.md).  The pytest-benchmark fixture times the
representative computation of each artifact.
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list[str]]) -> None:
    """Print a small fixed-width table under a title banner."""
    print(f"\n=== {title} ===")
    widths = [max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(header)
              for i, header in enumerate(headers)]
    print("  ".join(str(header).ljust(width) for header, width in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
