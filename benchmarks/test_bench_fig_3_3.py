"""FIG-3.3: correct fault-injection probability vs. time in state, 1 ms timeslice.

With the patched 1 ms timeslice kernel, the paper's Figure 3.3 shows the
probability curve saturating at much smaller dwell times than Figure 3.2:
the OS context-switch latency, not the network or Loki itself, dominates
the notification delay.
"""

import pytest

from conftest import print_table
from repro.experiments import injection_probability_sweep

TIMESLICE = 0.001
DWELL_TIMES = (0.0005, 0.001, 0.002, 0.003, 0.005, 0.010)


@pytest.fixture(scope="module")
def sweep():
    return injection_probability_sweep(
        timeslice=TIMESLICE, dwell_times=DWELL_TIMES, experiments=3, cycles=8, seed=33
    )


def test_bench_figure_3_3(benchmark, sweep):
    """Regenerate Figure 3.3 and time one data point of the sweep."""
    benchmark(
        injection_probability_sweep,
        timeslice=TIMESLICE,
        dwell_times=(0.003,),
        experiments=1,
        cycles=4,
        seed=2,
    )
    rows = [
        [f"{point.dwell_time * 1000:.1f} ms",
         f"{point.dwell_time / TIMESLICE:.1f}",
         point.injections,
         "n/a" if point.probability is None else f"{point.probability:.2f}"]
        for point in sweep
    ]
    print_table(
        "Figure 3.3 — correct injection probability (1 ms timeslice)",
        ["time in state", "timeslices", "injections", "P(correct)"],
        rows,
    )


def test_shape_matches_paper(sweep):
    """The 1 ms-timeslice curve saturates at millisecond-scale dwell times."""
    by_dwell = {point.dwell_time: point.probability for point in sweep}
    assert by_dwell[0.010] > 0.75
    assert by_dwell[0.010] >= by_dwell[0.0005]


def test_smaller_timeslice_improves_accuracy():
    """Cross-figure claim: at the same dwell time, 1 ms beats 10 ms timeslices."""
    dwell = (0.005,)
    fast = injection_probability_sweep(0.001, dwell, experiments=3, cycles=6, seed=5)[0]
    slow = injection_probability_sweep(0.010, dwell, experiments=3, cycles=6, seed=5)[0]
    assert fast.probability >= slow.probability
