"""Machine-readable benchmark trajectory: ``BENCH_analysis.json``.

Every benchmark run appends its timings to a single JSON file at the repo
root so the project accumulates a perf trajectory across PRs instead of
anecdotes.  The schema is deliberately tiny::

    { "<benchmark name>": {"mean_s": <float>, "runs": <int>, "git_sha": "<sha>"} }

Entries are merged by name: re-running a benchmark overwrites its own
entry (stamped with the current commit) and leaves the others alone.  Two
producers write here:

* the ``pytest_sessionfinish`` hook in ``conftest.py`` records every
  pytest-benchmark fixture timing automatically, and
* manually timed comparisons (e.g. the analysis-phase old-vs-new bench)
  call :func:`record_benchmark` directly — for ratios,
  :func:`record_speedup` stores the dimensionless factor under ``mean_s``.

:func:`committed_mean` and :func:`assert_no_regression` read the gate side
of the trajectory: what the *committed* file says a benchmark cost, so a
CI job can block on a perf regression against the last recorded number.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Iterable

#: The trajectory file, at the repository root.
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_analysis.json"


def git_sha() -> str:
    """The short commit hash of the working tree, or ``"unknown"``.

    Deliberately *not* cached: a benchmark session can span a commit (or
    run right after one), and a cached session-start hash would stamp the
    new timings with the old commit — every entry records the hash at the
    moment it is written.
    """
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_PATH.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return "unknown"
    if output.returncode != 0:  # pragma: no cover - not a git checkout
        return "unknown"
    return output.stdout.strip()


def load_trajectory(path: Path = BENCH_PATH) -> dict[str, dict]:
    """The current contents of the trajectory file (empty if absent/corrupt)."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def record_benchmarks(
    entries: Iterable[tuple[str, float, int]], path: Path = BENCH_PATH
) -> None:
    """Merge ``(name, mean_s, runs)`` timings into the trajectory in one write."""
    data = load_trajectory(path)
    sha = git_sha()
    for name, mean_s, runs in entries:
        data[name] = {"mean_s": float(mean_s), "runs": int(runs), "git_sha": sha}
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def record_benchmark(
    name: str, mean_s: float, runs: int, path: Path = BENCH_PATH
) -> None:
    """Merge one benchmark's timing into the trajectory file."""
    record_benchmarks([(name, mean_s, runs)], path)


def record_speedup(name: str, factor: float, runs: int, path: Path = BENCH_PATH) -> None:
    """Record a dimensionless speedup factor (stored under ``mean_s``)."""
    record_benchmark(name, factor, runs, path)


# ---------------------------------------------------------------------------
# Regression gating against the committed trajectory
# ---------------------------------------------------------------------------


def committed_trajectory(path: Path = BENCH_PATH) -> dict[str, dict]:
    """The trajectory as committed (``HEAD``), not as on the working tree.

    Falls back to the on-disk file outside a git checkout.  The
    distinction matters because a benchmark session rewrites the working
    file at session finish: a gate must compare against what the
    repository *promised*, never against numbers the same session just
    produced.
    """
    try:
        output = subprocess.run(
            ["git", "show", f"HEAD:{path.name}"],
            cwd=path.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return load_trajectory(path)
    if output.returncode != 0:  # not a checkout, or file not committed yet
        return load_trajectory(path)
    try:
        data = json.loads(output.stdout)
    except ValueError:  # pragma: no cover - committed file is valid JSON
        return load_trajectory(path)
    return data if isinstance(data, dict) else {}


def committed_mean(name: str, path: Path = BENCH_PATH) -> float | None:
    """The committed ``mean_s`` of one benchmark, or ``None`` if unrecorded."""
    entry = committed_trajectory(path).get(name)
    if not isinstance(entry, dict):
        return None
    mean = entry.get("mean_s")
    return float(mean) if isinstance(mean, (int, float)) else None


def assert_no_regression(
    name: str,
    measured_s: float,
    *,
    max_slowdown: float = 3.0,
    path: Path = BENCH_PATH,
) -> float | None:
    """Fail if ``measured_s`` regressed past ``max_slowdown``× the committed mean.

    Returns the measured/committed ratio, or ``None`` when the trajectory
    holds no committed entry to compare against (a new benchmark cannot
    gate its own first recording).  The default tolerance is deliberately
    loose — shared CI runners and single-CPU dev boxes swing absolute
    timings by 2× on a bad day — so the gate only trips on the kind of
    structural regression (an accidental revert of a hot-path
    optimization) it exists to catch, not on host noise.
    """
    committed = committed_mean(name, path)
    if committed is None or committed <= 0:
        return None
    ratio = measured_s / committed
    if ratio > max_slowdown:
        raise AssertionError(
            f"perf regression: {name} measured {measured_s:.6f}s vs committed "
            f"mean {committed:.6f}s ({ratio:.2f}x, tolerance {max_slowdown:.1f}x)"
        )
    return ratio
