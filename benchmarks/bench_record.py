"""Machine-readable benchmark trajectory: ``BENCH_analysis.json``.

Every benchmark run appends its timings to a single JSON file at the repo
root so the project accumulates a perf trajectory across PRs instead of
anecdotes.  The schema is deliberately tiny::

    { "<benchmark name>": {"mean_s": <float>, "runs": <int>, "git_sha": "<sha>"} }

Entries are merged by name: re-running a benchmark overwrites its own
entry (stamped with the current commit) and leaves the others alone.  Two
producers write here:

* the ``pytest_sessionfinish`` hook in ``conftest.py`` records every
  pytest-benchmark fixture timing automatically, and
* manually timed comparisons (e.g. the analysis-phase old-vs-new bench)
  call :func:`record_benchmark` directly — for ratios,
  :func:`record_speedup` stores the dimensionless factor under ``mean_s``.
"""

from __future__ import annotations

import json
import subprocess
from functools import lru_cache
from pathlib import Path
from typing import Iterable

#: The trajectory file, at the repository root.
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_analysis.json"


@lru_cache(maxsize=1)
def git_sha() -> str:
    """The short commit hash of the working tree, or ``"unknown"`` (cached)."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=BENCH_PATH.parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - no git
        return "unknown"
    if output.returncode != 0:  # pragma: no cover - not a git checkout
        return "unknown"
    return output.stdout.strip()


def load_trajectory(path: Path = BENCH_PATH) -> dict[str, dict]:
    """The current contents of the trajectory file (empty if absent/corrupt)."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def record_benchmarks(
    entries: Iterable[tuple[str, float, int]], path: Path = BENCH_PATH
) -> None:
    """Merge ``(name, mean_s, runs)`` timings into the trajectory in one write."""
    data = load_trajectory(path)
    sha = git_sha()
    for name, mean_s, runs in entries:
        data[name] = {"mean_s": float(mean_s), "runs": int(runs), "git_sha": sha}
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def record_benchmark(
    name: str, mean_s: float, runs: int, path: Path = BENCH_PATH
) -> None:
    """Merge one benchmark's timing into the trajectory file."""
    record_benchmarks([(name, mean_s, runs)], path)


def record_speedup(name: str, factor: float, runs: int, path: Path = BENCH_PATH) -> None:
    """Record a dimensionless speedup factor (stored under ``mean_s``)."""
    record_benchmark(name, factor, runs, path)
