"""CH5-COV: the Chapter 5 coverage evaluation (studies 1-3).

Injects a fault into the leader of the election protocol, measures whether
the crashed leader recovers (is restarted), and combines the per-study
coverages into an overall stratified-weighted coverage.  The restart
policy's success probability is known, so the estimate can be checked
against ground truth — the methodological point of Section 5.8.
"""

import pytest

from conftest import print_table
from repro.experiments import chapter5_coverage_evaluation

RECOVERY_PROBABILITY = 0.7


@pytest.fixture(scope="module")
def evaluation():
    return chapter5_coverage_evaluation(
        experiments=6, recovery_probability=RECOVERY_PROBABILITY, seed=41
    )


def test_bench_chapter5_coverage(benchmark, evaluation):
    """Time a one-experiment coverage campaign and print the evaluation."""
    benchmark(
        chapter5_coverage_evaluation,
        experiments=1,
        recovery_probability=RECOVERY_PROBABILITY,
        seed=1,
    )
    rows = [
        [study, f"{coverage:.2f}",
         f"{evaluation.per_study_accepted[study][0]}/{evaluation.per_study_accepted[study][1]}"]
        for study, coverage in evaluation.per_study_coverage.items()
    ]
    rows.append(["overall (stratified weighted)", f"{evaluation.overall_coverage:.2f}", "-"])
    rows.append(["ground truth", f"{evaluation.recovery_probability:.2f}", "-"])
    print_table(
        "Chapter 5, evaluation 1 — coverage of an error in the leader",
        ["study", "coverage", "accepted"],
        rows,
    )


def test_coverage_estimate_tracks_ground_truth(evaluation):
    assert evaluation.overall_coverage == pytest.approx(RECOVERY_PROBABILITY, abs=0.3)


def test_most_experiments_are_accepted(evaluation):
    for study, (accepted, total) in evaluation.per_study_accepted.items():
        assert accepted >= total // 2, study
