"""DIST-ENGINE: throughput and overhead of the distributed backend.

Two questions:

1. What does the supervised fleet buy on a real campaign?  The same
   200-experiment, four-study campaign as the execution bench, run
   through the coordinator/worker backend with four workers
   (``distributed_campaign_200x4`` in the trajectory).  The >= 1.5x
   speedup assertion only applies when the machine exposes at least four
   usable CPUs; the gate is looser than the pool's because every record
   crosses a socket as JSON instead of a pickle over a pipe.
2. What does the orchestration itself cost?  A small campaign on a
   *single* worker isolates the coordinator overhead — sharding,
   heartbeats, framing, dedup bookkeeping — from any parallel speedup
   (``dist_coordinator_overhead_24x1``); the per-experiment delta against
   a serial run is printed alongside.

Correctness is asserted before timings are recorded: the distributed
analysis must match the serial one seed-for-seed.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table, usable_cpus
from repro.apps.toggle import build_toggle_study
from repro.core.campaign import CampaignConfig
from repro.core.execution import DISTRIBUTED, ExecutionConfig, available_backends
from repro.pipeline import run_and_analyze

STUDIES = 4
EXPERIMENTS_PER_STUDY = 50  # 200 experiments total
WORKERS = 4

needs_fork = pytest.mark.skipif(
    DISTRIBUTED not in available_backends(),
    reason="distributed backend needs the fork start method",
)


def build_campaign(
    studies: int = STUDIES, experiments: int = EXPERIMENTS_PER_STUDY
) -> CampaignConfig:
    built = [
        build_toggle_study(
            name=f"dwell-{index}",
            dwell_time=0.010 + 0.005 * index,
            timeslice=0.005,
            cycles=3,
            experiments=experiments,
            seed=100 + index,
        )
        for index in range(studies)
    ]
    return CampaignConfig(name="dist-bench", studies=built)


def seeds_of(analysis) -> dict[str, list[int]]:
    return {
        name: [experiment.result.seed for experiment in study.experiments]
        for name, study in analysis.studies.items()
    }


@needs_fork
def test_bench_distributed_campaign(benchmark):
    """200 experiments through the supervised four-worker fleet."""
    campaign = build_campaign()

    start = time.perf_counter()
    serial = run_and_analyze(campaign, ExecutionConfig.serial())
    serial_elapsed = time.perf_counter() - start

    config = ExecutionConfig.distributed(workers=WORKERS, chunk_size=5)
    benchmark.extra_info["trajectory_name"] = "distributed_campaign_200x4"
    dist = benchmark.pedantic(
        lambda: run_and_analyze(campaign, config), rounds=3, iterations=1
    )

    # The engine's contract: the backend cannot change any result.
    assert seeds_of(serial) == seeds_of(dist)
    assert serial.acceptance_summary() == dist.acceptance_summary()

    dist_elapsed = benchmark.stats.stats.mean
    speedup = serial_elapsed / dist_elapsed if dist_elapsed > 0 else float("inf")
    experiments = STUDIES * EXPERIMENTS_PER_STUDY
    print_table(
        f"Distributed backend — {experiments} experiments, {WORKERS} workers "
        f"({usable_cpus()} usable CPUs)",
        ["backend", "wall clock", "experiments/s"],
        [
            ["serial", f"{serial_elapsed:.2f} s", f"{experiments / serial_elapsed:.1f}"],
            ["distributed", f"{dist_elapsed:.2f} s", f"{experiments / dist_elapsed:.1f}"],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
    )

    if usable_cpus() >= WORKERS:
        assert speedup >= 1.5, (
            f"expected >= 1.5x speedup with {WORKERS} workers on "
            f"{usable_cpus()} CPUs, measured {speedup:.2f}x"
        )


@needs_fork
def test_bench_coordinator_overhead(benchmark):
    """Coordinator cost isolated: one worker, no parallelism to hide it."""
    campaign = build_campaign(studies=1, experiments=24)

    start = time.perf_counter()
    serial = run_and_analyze(campaign, ExecutionConfig.serial())
    serial_elapsed = time.perf_counter() - start

    config = ExecutionConfig.distributed(workers=1, chunk_size=6)
    benchmark.extra_info["trajectory_name"] = "dist_coordinator_overhead_24x1"
    dist = benchmark.pedantic(
        lambda: run_and_analyze(campaign, config), rounds=3, iterations=1
    )
    assert seeds_of(serial) == seeds_of(dist)

    dist_elapsed = benchmark.stats.stats.mean
    overhead = dist_elapsed - serial_elapsed
    per_experiment_ms = 1000.0 * overhead / 24
    print_table(
        "Coordinator overhead — 24 experiments, 1 worker",
        ["run", "wall clock", "overhead/experiment"],
        [
            ["serial", f"{serial_elapsed * 1000:.1f} ms", ""],
            ["distributed (1 worker)", f"{dist_elapsed * 1000:.1f} ms", f"{per_experiment_ms:.2f} ms"],
        ],
    )
