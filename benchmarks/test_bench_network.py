"""NETWORK: message-delivery throughput of the topology-aware substrate.

The topology refactor put a link-state lookup on every message send, so
this bench pins the substrate's raw delivery throughput to the perf
trajectory: a sender/sink pair exchanging a fixed burst of messages over
(a) the default healthy LAN link, (b) a lossy link, and (c) a link with
duplication and reordering enabled — the full per-message pipeline
including the FIFO floor and the structured delivery-event log.  The
pytest-benchmark fixture times the healthy-link case (the hot path every
experiment pays); the loss/duplicate/reorder cases are printed for
context and recorded by the session hook like every other fixture timing.
"""

from __future__ import annotations

import time

from conftest import print_table
from repro.sim.kernel import SimKernel
from repro.sim.network import LinkProfile, NetworkModel
from repro.sim.rng import RandomStreams

MESSAGES = 20_000


def run_burst(
    loss: float = 0.0, duplicate: float = 0.0, reorder: float = 0.0
) -> tuple[int, int]:
    """Send one burst through a fresh model; return (delivered, events)."""
    kernel = SimKernel()
    model = NetworkModel(
        kernel,
        RandomStreams(11),
        default_profile=LinkProfile(
            base_delay=150e-6, jitter_mean=30e-6, loss_probability=loss
        ),
    )
    if duplicate:
        model.set_duplicate("hosta", "hostb", probability=duplicate)
    if reorder:
        model.set_reorder("hosta", "hostb", probability=reorder, window=0.001)
    delivered = []
    for index in range(MESSAGES):
        model.send(
            "hosta/sender",
            "hostb/sink",
            index,
            deliver=lambda message: delivered.append(message.payload),
        )
    kernel.run()
    assert model.messages_sent == MESSAGES
    assert len(delivered) == model.messages_delivered
    return model.messages_delivered, len(model.events)


def test_bench_message_delivery_throughput(benchmark):
    """Time the healthy hot path; print throughput across link conditions."""
    rows = []
    for label, kwargs in (
        ("healthy LAN", {}),
        ("10% loss", {"loss": 0.10}),
        ("5% duplicate + 5% reorder", {"duplicate": 0.05, "reorder": 0.05}),
    ):
        start = time.perf_counter()
        delivered, events = run_burst(**kwargs)
        elapsed = time.perf_counter() - start
        rows.append(
            [
                label,
                str(delivered),
                str(events),
                f"{MESSAGES / elapsed / 1e3:.0f}k msg/s",
            ]
        )

    delivered, events = benchmark(run_burst)
    assert delivered == MESSAGES
    assert events == 0  # the healthy path records no delivery anomalies

    print_table(
        f"Message delivery — {MESSAGES} messages per burst",
        ["link condition", "delivered", "delivery events", "throughput"],
        rows,
    )


def test_delivery_throughput_has_not_regressed():
    """Blocking gate: the hot path must stay near its committed trajectory.

    Run in CI's bench-smoke job.  The best of a few bursts (minimum, the
    noise-robust statistic) is compared against the committed
    ``BENCH_analysis.json`` mean with a loose tolerance — loose enough
    that shared-runner noise never trips it, tight enough that reverting
    the batched delivery path (a >4x slowdown) always does.
    """
    from bench_record import assert_no_regression

    best = min(
        _timed_burst() for _ in range(5)
    )
    ratio = assert_no_regression(
        "benchmarks/test_bench_network.py::test_bench_message_delivery_throughput",
        best,
    )
    if ratio is not None:
        print(f"\ndelivery gate: best burst {best * 1e3:.1f} ms, {ratio:.2f}x committed mean")


def _timed_burst() -> float:
    start = time.perf_counter()
    run_burst()
    return time.perf_counter() - start
