"""PROTOCOLS: the real-protocol scenario suite as a perf trajectory.

Times the protocol campaign — the four base scenarios (Raft-style
election, quorum register, SWIM detector, DFS master/replica) run
back-to-back through the full pipeline — and prints a per-scenario
comparison (acceptance, protocol-note volume, headline measure) over all
twelve protocol variants.

Two gate surfaces ride along:

* the pytest-benchmark fixture records the campaign timing into the
  ``BENCH_analysis.json`` trajectory under a stable name, and
* :func:`test_protocol_campaign_has_not_regressed` (run in CI's blocking
  bench-smoke job) compares a fresh best-of-three timing against the
  committed trajectory mean via ``assert_no_regression`` — an accidental
  quadratic in an app's message handling or a simulator hot path shows
  up here before it shows up as a slow CI suite.
"""

from __future__ import annotations

import time

from conftest import print_table
from repro.core.campaign import CampaignConfig
from repro.core.execution import ExecutionConfig
from repro.pipeline import run_and_analyze
from repro.scenarios import DEFAULT_REGISTRY

#: One representative scenario per protocol app: the timed campaign.
BASE_SCENARIOS = ("raft-election", "quorum-register", "swim-detector", "dfs-master")

#: Every protocol variant, for the comparison table.
PROTOCOL_SCENARIOS = tuple(
    scenario.name for scenario in DEFAULT_REGISTRY if "protocol" in scenario.tags
)

TRAJECTORY_NAME = "benchmarks/test_bench_protocols.py::protocol_suite_campaign"

EXPERIMENTS = 2
SEED = 7


def run_protocol_campaign() -> int:
    """One full pipeline run of the four base scenarios; returns #accepted."""
    campaign = DEFAULT_REGISTRY.build_campaign(
        names=BASE_SCENARIOS,
        experiments=EXPERIMENTS,
        seed=SEED,
        campaign_name="protocol-bench",
    )
    analysis = run_and_analyze(campaign)
    return sum(
        1
        for study_name in analysis.studies
        for experiment in analysis.studies[study_name].experiments
        if experiment.accepted
    )


def test_bench_protocol_suite_campaign(benchmark):
    """Time the base-scenario campaign and print the full variant table."""
    benchmark.extra_info["trajectory_name"] = TRAJECTORY_NAME

    rows = []
    for name in PROTOCOL_SCENARIOS:
        scenario = DEFAULT_REGISTRY.get(name)
        study = scenario.build(experiments=EXPERIMENTS, seed=SEED)
        campaign = CampaignConfig(name=f"bench-{name}", studies=[study])
        analysis = run_and_analyze(
            campaign, execution=ExecutionConfig(keep_raw_results=True)
        )
        study_analysis = analysis.studies[study.name]
        accepted = sum(1 for e in study_analysis.experiments if e.accepted)
        notes = sum(
            len(timeline.notes)
            for e in study_analysis.experiments
            for timeline in e.result.local_timelines.values()
        )
        values = [
            value
            for value in study_analysis.measure_values(scenario.measure_factory())
            if value is not None
        ]
        mean = sum(values) / len(values) if values else None
        rows.append(
            [
                name,
                f"{accepted}/{EXPERIMENTS}",
                str(notes),
                scenario.measure_names()[0],
                f"{mean:.4f}" if mean is not None else "n/a",
            ]
        )

    accepted = benchmark(run_protocol_campaign)
    assert accepted > len(BASE_SCENARIOS)  # a majority across the campaign

    print_table(
        f"Protocol suite — {len(PROTOCOL_SCENARIOS)} scenarios, "
        f"{EXPERIMENTS} experiments each",
        ["scenario", "accepted", "notes", "measure", "mean"],
        rows,
    )


def test_protocol_campaign_has_not_regressed():
    """Blocking gate: the protocol campaign stays near its trajectory mean."""
    from bench_record import assert_no_regression

    best = min(_timed_campaign() for _ in range(3))
    ratio = assert_no_regression(TRAJECTORY_NAME, best)
    if ratio is not None:
        print(
            f"\nprotocol gate: best campaign {best * 1e3:.1f} ms, "
            f"{ratio:.2f}x committed mean"
        )


def _timed_campaign() -> float:
    start = time.perf_counter()
    run_protocol_campaign()
    return time.perf_counter() - start
